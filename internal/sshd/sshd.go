// Package sshd provides the study's second target application: a miniature
// sshd modeled on ssh-1.2.30. Its authentication section consists of
// do_authentication(), auth_rhosts() and auth_password() — the same three
// functions the paper injects into — plus an RSA challenge stub. Unlike
// ftpd's single point of entry (password), sshd accepts a client through
// any of several mechanisms; the paper attributes sshd's higher break-in
// rate to exactly this multi-entry structure.
//
// The wire protocol is a line-oriented simplification of SSH-1.5: version
// exchange, LOGIN, AUTH attempts, then an EXEC session on success.
package sshd

import (
	"fmt"
	"strings"
	"sync"

	"faultsec/internal/cc"
	"faultsec/internal/rt"
	"faultsec/internal/target"
)

// AuthFuncs names the injection target set, as in the paper (§5.3).
var AuthFuncs = []string{"do_authentication", "auth_rhosts", "auth_password"}

type account struct {
	name     string
	password string
	salt     int32
	uid      int
	shell    string
}

var accounts = []account{
	{"root", "sup3ruser", 21, 0, "/bin/sh"},
	{"alice", "xyzzy42", 22, 1001, "/bin/sh"},
	{"bob", "hunter2!", 23, 1002, "/bin/bash"},
	{"eve", "l1sten3r", 24, 1003, "/usr/bin/screen"},
}

func hashString(pw string, salt int32) string {
	return fmt.Sprintf("%08x", uint32(rt.Xcrypt(pw, salt)))
}

// Source returns the complete MiniC source of the SSH daemon.
func Source() string {
	var names, hashes, salts, uids, shells strings.Builder
	for _, a := range accounts {
		fmt.Fprintf(&names, "%q, ", a.name)
		fmt.Fprintf(&hashes, "%q, ", hashString(a.password, a.salt))
		fmt.Fprintf(&salts, "%d, ", a.salt)
		fmt.Fprintf(&uids, "%d, ", a.uid)
		fmt.Fprintf(&shells, "%q, ", a.shell)
	}
	db := fmt.Sprintf(`
/* ---- compiled-in /etc/passwd analog ---- */
char *pw_names[] = {%s0};
char *pw_hashes[] = {%s0};
int pw_salts[] = {%s0};
int pw_uids[] = {%s0};
char *pw_shells[] = {%s0};
`, names.String(), hashes.String(), salts.String(), uids.String(), shells.String())
	return db + serverBody
}

const serverBody = `
/* /etc/hosts.equiv */
char *equiv_hosts[] = {"trusted.example.com", "build.example.com", 0};
/* ~/.rhosts entries: (user, host) pairs */
char *rhosts_users[] = {"bob", 0};
char *rhosts_hosts[] = {"bastion.example.com", 0};
/* authorized RSA identities: (user, key fingerprint) pairs */
char *rsa_users[] = {"alice", "bob", 0};
char *rsa_keys[] = {"65537:ab54a98ceb1f0ad2", "65537:deadbeef01234567", 0};
/* /etc/shells */
char *ok_shells[] = {"/bin/sh", "/bin/bash", "/bin/csh", 0};

/* sshd_config */
int permit_root_login = 0;
int permit_empty_passwords = 0;
int rhosts_authentication = 1;

/* session state */
char session_user[64];
int session_uid;

/*
 * auth_delay models sshd's pause between failed authentication attempts
 * (a busy loop; the simulator has no timers). Corrupted-state crashes that
 * occur after it contribute the long tail of the transient-window
 * distribution.
 */
int delay_sink;
void auth_delay() {
	int i;
	int v = 0;
	for (i = 0; i < 1500; i++) {
		v = v + i;
		if (v > 1000000) { v = v - 1000000; }
	}
	delay_sink = v;
}

char __xcbuf[12];
char *xcrypt_str(char *pw, int salt) {
	int h = xcrypt(pw, salt);
	int i = 7;
	while (i >= 0) {
		int d = h & 15;
		if (d < 10) { __xcbuf[i] = '0' + d; }
		else { __xcbuf[i] = 'a' + (d - 10); }
		h = h >> 4;
		i = i - 1;
	}
	__xcbuf[8] = 0;
	return __xcbuf;
}

/*
 * auth_rhosts — modeled on ssh-1.2.30 auth_rhosts(): trust the client if
 * its host appears in /etc/hosts.equiv (never for root) or if the
 * (user, host) pair appears in the user's ~/.rhosts.
 */
int auth_rhosts(char *user, char *host) {
	int i;
	if (!rhosts_authentication) { return 0; }
	if (host[0] == 0) { return 0; }
	/* unqualified host names cannot be verified */
	if (strchr_at(host, '.') < 0) { return 0; }
	i = 0;
	while (equiv_hosts[i]) {
		if (strcmp(host, equiv_hosts[i]) == 0) {
			if (strcmp(user, "root") != 0) { return 1; }
		}
		i = i + 1;
	}
	i = 0;
	while (rhosts_users[i]) {
		if (strcmp(user, rhosts_users[i]) == 0) {
			if (strcmp(host, rhosts_hosts[i]) == 0) { return 1; }
		}
		i = i + 1;
	}
	return 0;
}

/*
 * auth_rsa — challenge-response stub: the response must match the stored
 * key fingerprint. (A real server verifies a signature; the control
 * structure — lookup, compare, accept/deny — is the same.) Not part of the
 * injection target set, mirroring the paper.
 */
int auth_rsa(char *user, char *resp) {
	int i = 0;
	while (rsa_users[i]) {
		if (strcmp(user, rsa_users[i]) == 0) {
			if (strcmp(resp, rsa_keys[i]) == 0) { return 1; }
			return 0;
		}
		i = i + 1;
	}
	return 0;
}

/*
 * auth_password — modeled on ssh-1.2.30 auth_password(): passwd lookup,
 * PermitEmptyPasswords, PermitRootLogin, /etc/shells check, crypt compare.
 */
int auth_password(char *user, char *pw) {
	int i;
	int idx = -1;
	int ok;
	char *xc;
	i = 0;
	while (pw_names[i]) {
		if (strcmp(user, pw_names[i]) == 0) { idx = i; break; }
		i = i + 1;
	}
	if (idx < 0) { return 0; }
	if (pw[0] == 0) {
		if (permit_empty_passwords && pw_hashes[idx][0] == 0) { return 1; }
		return 0;
	}
	if (pw_uids[idx] == 0 && !permit_root_login) { return 0; }
	ok = 0;
	i = 0;
	while (ok_shells[i]) {
		if (strcmp(pw_shells[idx], ok_shells[i]) == 0) { ok = 1; break; }
		i = i + 1;
	}
	if (!ok) { return 0; }
	xc = xcrypt_str(pw, pw_salts[idx]);
	if (strcmp(xc, pw_hashes[idx]) == 0) {
		session_uid = pw_uids[idx];
		return 1;
	}
	return 0;
}

/*
 * do_authentication — modeled on ssh-1.2.30 do_authentication(): tries
 * rhosts first (paper Figure 2), then serves AUTH requests until one
 * mechanism accepts or the failure budget is exhausted. Multiple points of
 * entry: rhosts, RSA, password.
 */
int do_authentication(char *user, char *host) {
	int authenticated = 0;
	int failures = 0;
	char line[256];
	char method[32];
	char arg[200];
	int n;
	int i;
	int j;

	if (auth_rhosts(user, host)) {
		/* Authentication accepted. */
		authenticated = 1;
		write_line("AUTH_SUCCESS rhosts");
	}
	if (!authenticated) {
		write_line("AUTH_FAILED rhosts");
	}
	while (!authenticated) {
		n = read_line(line, 256);
		if (n < 0) { return 0; }
		/* parse "AUTH <METHOD> <arg>" */
		if (strncmp(line, "AUTH ", 5) != 0) {
			write_line("PROTOCOL_ERROR expected AUTH");
			failures = failures + 1;
			if (failures >= 3) {
				write_line("DISCONNECT Too many authentication failures.");
				return 0;
			}
			continue;
		}
		i = 5;
		j = 0;
		while (line[i] && line[i] != ' ' && j < 31) {
			method[j] = line[i];
			i = i + 1;
			j = j + 1;
		}
		method[j] = 0;
		while (line[i] == ' ') { i = i + 1; }
		j = 0;
		while (line[i] && j < 199) {
			arg[j] = line[i];
			i = i + 1;
			j = j + 1;
		}
		arg[j] = 0;
		if (strcmp(method, "RSA") == 0) {
			if (auth_rsa(user, arg)) {
				authenticated = 1;
				write_line("AUTH_SUCCESS rsa");
				break;
			}
			write_line("AUTH_FAILED rsa");
		} else {
			if (strcmp(method, "PASSWORD") == 0) {
				if (auth_password(user, arg)) {
					authenticated = 1;
					write_line("AUTH_SUCCESS password");
					break;
				}
				auth_delay();
				write_line("AUTH_FAILED password");
			} else {
				write_line("AUTH_FAILED unsupported");
			}
		}
		failures = failures + 1;
		if (failures >= 3) {
			write_line("DISCONNECT Too many authentication failures.");
			return 0;
		}
	}
	return authenticated;
}

/* session: serve EXEC requests after successful authentication */
void do_session(char *user) {
	char line[256];
	int n;
	while (1) {
		n = read_line(line, 256);
		if (n < 0) { break; }
		if (strncmp(line, "EXEC ", 5) == 0) {
			if (strcmp(&line[5], "whoami") == 0) {
				write_line(user);
				write_line("EXIT_STATUS 0");
				continue;
			}
			if (strcmp(&line[5], "id") == 0) {
				write_str("uid=");
				write_int(session_uid);
				write_str("(");
				write_str(user);
				write_line(")");
				write_line("EXIT_STATUS 0");
				continue;
			}
			write_str(&line[5]);
			write_line(": command not found");
			write_line("EXIT_STATUS 127");
			continue;
		}
		if (strcmp(line, "CLOSE") == 0) {
			write_line("BYE");
			return;
		}
		write_line("PROTOCOL_ERROR unknown request");
	}
}

int main() {
	char line[256];
	char user[64];
	char host[128];
	int n;
	int i;
	int j;
	write_line("SSH-1.99-minisshd_1.2.30");
	n = read_line(line, 256);
	if (n < 0) { return 0; }
	if (strncmp(line, "SSH-", 4) != 0) {
		write_line("PROTOCOL_ERROR bad version exchange");
		return 1;
	}
	write_line("WELCOME minisshd protocol ready");
	n = read_line(line, 256);
	if (n < 0) { return 0; }
	if (strncmp(line, "LOGIN ", 6) != 0) {
		write_line("PROTOCOL_ERROR expected LOGIN");
		return 1;
	}
	i = 6;
	j = 0;
	while (line[i] && line[i] != ' ' && j < 63) {
		user[j] = line[i];
		i = i + 1;
		j = j + 1;
	}
	user[j] = 0;
	while (line[i] == ' ') { i = i + 1; }
	j = 0;
	while (line[i] && j < 127) {
		host[j] = line[i];
		i = i + 1;
		j = j + 1;
	}
	host[j] = 0;
	if (user[0] == 0) {
		write_line("PROTOCOL_ERROR empty user");
		return 1;
	}
	strcpy(session_user, user);
	if (!do_authentication(user, host)) {
		return 0;
	}
	do_session(user);
	return 0;
}
`

func init() { target.Register("sshd", Build) }

var buildOnce = sync.OnceValues(func() (*target.App, error) {
	img, err := rt.BuildImage(Source())
	if err != nil {
		return nil, fmt.Errorf("sshd: build: %w", err)
	}
	return &target.App{
		Name:      "sshd",
		Image:     img,
		AuthFuncs: AuthFuncs,
		Scenarios: Scenarios(),
		Rebuild:   BuildWithCodegen,
	}, nil
})

// Build compiles and links the SSH daemon and returns the application
// bundle. The result is cached; callers share the immutable image.
func Build() (*target.App, error) { return buildOnce() }

// BuildWithCodegen builds the daemon with explicit codegen options (the
// hook hardening schemes rebuild through; not cached here —
// target.App.ForCodegen caches per option set).
func BuildWithCodegen(opts cc.Options) (*target.App, error) {
	img, err := rt.BuildImageWithOptions(opts, Source())
	if err != nil {
		return nil, fmt.Errorf("sshd: build: %w", err)
	}
	return &target.App{
		Name:      "sshd",
		Image:     img,
		AuthFuncs: AuthFuncs,
		Scenarios: Scenarios(),
		Rebuild:   BuildWithCodegen,
	}, nil
}

// Scenarios returns the paper's two SSH client access patterns.
func Scenarios() []target.Scenario {
	return []target.Scenario{
		{
			Name:        "Client1",
			Description: "existing user name, wrong password (attack pattern)",
			ShouldGrant: false,
			New: func() target.Client {
				return newClient("alice", "attacker.example.net",
					[]string{"wr0ngpass", "stillwrong"})
			},
		},
		{
			Name:        "Client2",
			Description: "existing user name, correct password",
			ShouldGrant: true,
			New: func() target.Client {
				return newClient("alice", "workstation.example.org",
					[]string{"xyzzy42"})
			},
		},
	}
}
