package sshd_test

import (
	"errors"
	"strings"
	"testing"

	"faultsec/internal/disasm"
	"faultsec/internal/kernel"
	"faultsec/internal/sshd"
	"faultsec/internal/target"
	"faultsec/internal/vm"
)

func runScenario(t *testing.T, app *target.App, sc target.Scenario) (target.Client, *kernel.Kernel, error) {
	t.Helper()
	client := sc.New()
	k := kernel.New(client)
	ld, err := app.Image.Load(k, nil)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return client, k, ld.Machine.Run()
}

func TestGoldenRuns(t *testing.T) {
	app, err := sshd.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	t.Run("Client1", func(t *testing.T) {
		sc, _ := app.Scenario("Client1")
		client, k, runErr := runScenario(t, app, sc)
		var exit *vm.ExitStatus
		if !errors.As(runErr, &exit) {
			t.Fatalf("run ended %v\n%s", runErr, k.Transcript.String())
		}
		if client.Granted() {
			t.Errorf("attack client granted access:\n%s", k.Transcript.String())
		}
		out := string(k.Transcript.ServerBytes())
		for _, want := range []string{
			"AUTH_FAILED rhosts",
			"AUTH_FAILED rsa",
			"AUTH_FAILED password",
			"DISCONNECT Too many authentication failures.",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("transcript missing %q:\n%s", want, k.Transcript.String())
			}
		}
		if strings.Contains(out, "AUTH_SUCCESS") {
			t.Errorf("unexpected success:\n%s", k.Transcript.String())
		}
	})
	t.Run("Client2", func(t *testing.T) {
		sc, _ := app.Scenario("Client2")
		client, k, runErr := runScenario(t, app, sc)
		var exit *vm.ExitStatus
		if !errors.As(runErr, &exit) {
			t.Fatalf("run ended %v\n%s", runErr, k.Transcript.String())
		}
		if !client.Granted() {
			t.Errorf("legitimate client denied:\n%s", k.Transcript.String())
		}
		out := string(k.Transcript.ServerBytes())
		for _, want := range []string{
			"AUTH_FAILED rhosts", // rhosts fails, then RSA fails, then password works
			"AUTH_FAILED rsa",
			"AUTH_SUCCESS password",
			"alice", // whoami output
			"EXIT_STATUS 0",
			"BYE",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("transcript missing %q:\n%s", want, k.Transcript.String())
			}
		}
	})
}

func TestRhostsEntryPoint(t *testing.T) {
	// bob connecting from bastion.example.com passes rhosts without any
	// password: the multi-entry property the paper highlights.
	app, err := sshd.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sc := target.Scenario{
		Name: "rhosts", ShouldGrant: true,
		New: func() target.Client {
			return sshd.NewClientForTest("bob", "bastion.example.com", nil)
		},
	}
	client, k, runErr := runScenario(t, app, sc)
	var exit *vm.ExitStatus
	if !errors.As(runErr, &exit) {
		t.Fatalf("run ended %v\n%s", runErr, k.Transcript.String())
	}
	if !client.Granted() {
		t.Errorf("rhosts client denied:\n%s", k.Transcript.String())
	}
	if !strings.Contains(string(k.Transcript.ServerBytes()), "AUTH_SUCCESS rhosts") {
		t.Errorf("missing rhosts success:\n%s", k.Transcript.String())
	}
}

func TestHostsEquivEntryPoint(t *testing.T) {
	app, err := sshd.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// Any non-root account from a hosts.equiv machine gets in.
	sc := target.Scenario{
		Name: "equiv", ShouldGrant: true,
		New: func() target.Client {
			return sshd.NewClientForTest("eve", "trusted.example.com", nil)
		},
	}
	client, k, runErr := runScenario(t, app, sc)
	var exit *vm.ExitStatus
	if !errors.As(runErr, &exit) {
		t.Fatalf("run ended %v\n%s", runErr, k.Transcript.String())
	}
	if !client.Granted() {
		t.Errorf("hosts.equiv client denied:\n%s", k.Transcript.String())
	}
	// But root must NOT get in via hosts.equiv.
	scRoot := target.Scenario{
		Name: "equiv-root", ShouldGrant: false,
		New: func() target.Client {
			return sshd.NewClientForTest("root", "trusted.example.com",
				[]string{"wrong"})
		},
	}
	clientRoot, kRoot, runErr := runScenario(t, app, scRoot)
	if !errors.As(runErr, &exit) {
		t.Fatalf("root run ended %v\n%s", runErr, kRoot.Transcript.String())
	}
	if clientRoot.Granted() {
		t.Errorf("root granted via hosts.equiv:\n%s", kRoot.Transcript.String())
	}
}

func TestRootPasswordRefused(t *testing.T) {
	// PermitRootLogin=no: even the correct root password is refused.
	app, err := sshd.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sc := target.Scenario{
		Name: "root-pw", ShouldGrant: false,
		New: func() target.Client {
			return sshd.NewClientForTest("root", "nowhere.example.org",
				[]string{"sup3ruser"})
		},
	}
	client, k, runErr := runScenario(t, app, sc)
	var exit *vm.ExitStatus
	if !errors.As(runErr, &exit) {
		t.Fatalf("run ended %v\n%s", runErr, k.Transcript.String())
	}
	if client.Granted() {
		t.Errorf("root granted via password:\n%s", k.Transcript.String())
	}
}

func TestShellCheckRefusesOddShells(t *testing.T) {
	// eve's shell (/usr/bin/screen) is not in /etc/shells: password auth
	// must refuse even the correct password.
	app, err := sshd.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sc := target.Scenario{
		Name: "badshell", ShouldGrant: false,
		New: func() target.Client {
			return sshd.NewClientForTest("eve", "nowhere.example.org",
				[]string{"l1sten3r"})
		},
	}
	client, k, runErr := runScenario(t, app, sc)
	var exit *vm.ExitStatus
	if !errors.As(runErr, &exit) {
		t.Fatalf("run ended %v\n%s", runErr, k.Transcript.String())
	}
	if client.Granted() {
		t.Errorf("user with invalid shell granted:\n%s", k.Transcript.String())
	}
}

func TestAuthFunctionsHaveManyBranches(t *testing.T) {
	app, err := sshd.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	total := 0
	for _, fname := range app.AuthFuncs {
		f, ok := app.Image.FuncByName(fname)
		if !ok {
			t.Fatalf("function %s missing from image", fname)
		}
		entries := disasm.Sweep(app.Image.Text, app.Image.TextBase,
			f.Start-app.Image.TextBase, f.End-app.Image.TextBase)
		branches := disasm.Branches(entries)
		if len(branches) < 5 {
			t.Errorf("%s has only %d branches", fname, len(branches))
		}
		total += len(branches)
	}
	if total < 30 {
		t.Errorf("auth section has only %d branches", total)
	}
	t.Logf("sshd auth section: %d branch instructions", total)
}

// badVersionClient sends a malformed version string.
type badVersionClient struct{ done bool }

func (c *badVersionClient) OnServerLine(line string) []string {
	if strings.HasPrefix(line, "SSH-") {
		return []string{"HTTP/1.0 GET /"}
	}
	if strings.HasPrefix(line, "PROTOCOL_ERROR") {
		c.done = true
	}
	return nil
}
func (c *badVersionClient) Done() bool    { return c.done }
func (c *badVersionClient) Granted() bool { return false }

func TestProtocolErrorOnBadVersion(t *testing.T) {
	app, err := sshd.Build()
	if err != nil {
		t.Fatal(err)
	}
	sc := target.Scenario{
		Name: "badversion", ShouldGrant: false,
		New: func() target.Client { return &badVersionClient{} },
	}
	_, k, runErr := runScenario(t, app, sc)
	var exit *vm.ExitStatus
	if !errors.As(runErr, &exit) {
		t.Fatalf("run ended %v\n%s", runErr, k.Transcript.String())
	}
	if exit.Code != 1 {
		t.Errorf("exit = %d, want 1 (protocol error)", exit.Code)
	}
	if !strings.Contains(string(k.Transcript.ServerBytes()), "PROTOCOL_ERROR bad version exchange") {
		t.Errorf("missing protocol error:\n%s", k.Transcript.String())
	}
}

func TestUnqualifiedHostFailsRhosts(t *testing.T) {
	// "localhost" has no dot: auth_rhosts must refuse to trust it even if
	// it appeared in hosts.equiv-like lists.
	app, err := sshd.Build()
	if err != nil {
		t.Fatal(err)
	}
	sc := target.Scenario{
		Name: "unqualified", ShouldGrant: false,
		New: func() target.Client {
			return sshd.NewClientForTest("bob", "bastion", nil) // unqualified
		},
	}
	client, k, runErr := runScenario(t, app, sc)
	var exit *vm.ExitStatus
	if !errors.As(runErr, &exit) {
		t.Fatalf("run ended %v\n%s", runErr, k.Transcript.String())
	}
	if client.Granted() {
		t.Errorf("unqualified host trusted:\n%s", k.Transcript.String())
	}
}

func TestUnsupportedAuthMethod(t *testing.T) {
	// A client offering an unknown method gets AUTH_FAILED unsupported and
	// eventually DISCONNECT.
	app, err := sshd.Build()
	if err != nil {
		t.Fatal(err)
	}
	sc := target.Scenario{
		Name: "unsupported", ShouldGrant: false,
		New: func() target.Client { return &unsupportedMethodClient{} },
	}
	_, k, runErr := runScenario(t, app, sc)
	var exit *vm.ExitStatus
	if !errors.As(runErr, &exit) {
		t.Fatalf("run ended %v\n%s", runErr, k.Transcript.String())
	}
	out := string(k.Transcript.ServerBytes())
	if !strings.Contains(out, "AUTH_FAILED unsupported") {
		t.Errorf("missing unsupported failure:\n%s", k.Transcript.String())
	}
	if !strings.Contains(out, "DISCONNECT") {
		t.Errorf("missing disconnect:\n%s", k.Transcript.String())
	}
}

type unsupportedMethodClient struct {
	tries int
	done  bool
}

func (c *unsupportedMethodClient) OnServerLine(line string) []string {
	switch {
	case strings.HasPrefix(line, "SSH-"):
		return []string{"SSH-1.5-miniclient"}
	case strings.HasPrefix(line, "WELCOME"):
		return []string{"LOGIN alice somewhere.example.org"}
	case strings.HasPrefix(line, "AUTH_FAILED"):
		c.tries++
		if c.tries > 3 {
			c.done = true
			return nil
		}
		return []string{"AUTH KERBEROS ticket-blob"}
	case strings.HasPrefix(line, "DISCONNECT"):
		c.done = true
	}
	return nil
}
func (c *unsupportedMethodClient) Done() bool    { return c.done }
func (c *unsupportedMethodClient) Granted() bool { return false }
