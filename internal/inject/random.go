package inject

import (
	"context"
	"fmt"
	"math/rand"

	"faultsec/internal/disasm"
	"faultsec/internal/encoding"
	"faultsec/internal/target"
)

// RandomConfig parameterizes the paper's §7 testbed: massive random
// single-bit injections over the entire text segment while the server is
// under attack load (Client1), measuring how many errors cause a security
// violation (the paper reports about 1 in 3,000).
type RandomConfig struct {
	App      *target.App
	Scenario target.Scenario
	Scheme   encoding.Scheme
	// N is the number of random injections.
	N int
	// Seed makes the experiment reproducible.
	Seed int64
	// Fuel is the per-run instruction budget; 0 means DefaultFuel.
	Fuel uint64
	// Parallelism is the worker count; 0 means GOMAXPROCS.
	Parallelism int
	// KeepResults retains per-run detail.
	KeepResults bool
}

// RandomExperiments derives a deterministic list of N random single-bit
// experiments over the whole text segment. Each random (byte, bit) pick is
// mapped to the instruction containing that byte so the injector can watch
// for activation with a breakpoint, exactly as in the exhaustive campaign.
func RandomExperiments(app *target.App, scheme encoding.Scheme, n int, seed int64) ([]Experiment, error) {
	text := app.Image.Text
	entries := disasm.Sweep(text, app.Image.TextBase, 0, uint32(len(text)))
	// Index: text offset -> instruction entry.
	owner := make([]int, len(text))
	for i := range owner {
		owner[i] = -1
	}
	for idx, e := range entries {
		start := e.Addr - app.Image.TextBase
		n := len(e.Raw)
		for j := 0; j < n; j++ {
			owner[int(start)+j] = idx
		}
	}

	rng := rand.New(rand.NewSource(seed)) //nolint:gosec // reproducible experiment, not crypto
	out := make([]Experiment, 0, n)
	for len(out) < n {
		off := rng.Intn(len(text))
		bit := rng.Intn(8)
		idx := owner[off]
		if idx < 0 {
			continue // alignment padding that failed to decode; re-pick
		}
		e := entries[idx]
		raw := make([]byte, len(e.Raw))
		copy(raw, e.Raw)
		funcName := ""
		for _, f := range app.Image.Funcs {
			if e.Addr >= f.Start && e.Addr < f.End {
				funcName = f.Name
				break
			}
		}
		out = append(out, Experiment{
			Target: Target{
				Func: funcName,
				Addr: e.Addr,
				Raw:  raw,
				Inst: e.Inst,
			},
			ByteIdx: off - int(e.Addr-app.Image.TextBase),
			Bit:     bit,
			Scheme:  scheme,
		})
	}
	return out, nil
}

// RunRandom executes the random-injection testbed.
func RunRandom(ctx context.Context, cfg RandomConfig) (*Stats, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("inject: random campaign needs N > 0")
	}
	experiments, err := RandomExperiments(cfg.App, cfg.Scheme, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	stats, err := RunExperiments(ctx, Config{
		App:         cfg.App,
		Scenario:    cfg.Scenario,
		Scheme:      cfg.Scheme,
		Fuel:        cfg.Fuel,
		Parallelism: cfg.Parallelism,
		KeepResults: cfg.KeepResults,
	}, experiments)
	if err != nil {
		return nil, err
	}
	stats.Scenario = cfg.Scenario.Name + "/random"
	return stats, nil
}
