package inject_test

import (
	"context"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"faultsec/internal/encoding"
	"faultsec/internal/ftpd"
	"faultsec/internal/inject"
)

// shardStats splits results into k contiguous shards and aggregates each
// independently, mirroring what a fleet worker does with its slice of the
// enumeration.
func shardStats(t *testing.T, full *inject.Stats, k int) []*inject.Stats {
	t.Helper()
	if len(full.Results) == 0 {
		t.Fatal("shardStats needs KeepResults")
	}
	shards := make([]*inject.Stats, 0, k)
	n := len(full.Results)
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		s := inject.NewStats(full.App, full.Scenario, full.Scheme, full.Model)
		for _, r := range full.Results[lo:hi] {
			s.Add(r)
		}
		s.Results = append(s.Results, full.Results[lo:hi]...)
		shards = append(shards, s)
	}
	return shards
}

// TestStatsMergeProperty is the recombination property behind the fleet
// coordinator (and FastFlip-style per-section analysis): partition a real
// campaign's results into shards, aggregate each shard independently, and
// merging the shard Stats reproduces the single-run aggregate.
//
//   - Merged in shard (enumeration) order, the result is deep-equal to the
//     single-run Stats, including the order of CrashLatencies and Results.
//   - Merged in any order, every additive field still matches and the
//     slice fields match as multisets.
func TestStatsMergeProperty(t *testing.T) {
	app, err := ftpd.Build()
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := app.Scenario("Client1")
	full, err := inject.Run(context.Background(), inject.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, KeepResults: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.CrashLatencies) == 0 {
		t.Fatal("campaign has no crashes; the ordering property would be vacuous")
	}

	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 3, 7, 16} {
		shards := shardStats(t, full, k)

		// In-order merge: byte-identical to the single-run aggregate.
		ordered := inject.NewStats(full.App, full.Scenario, full.Scheme, full.Model)
		for _, sh := range shards {
			if err := ordered.Merge(sh); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
		}
		if !reflect.DeepEqual(ordered, full) {
			t.Errorf("k=%d: in-order merge differs from single-run stats", k)
		}

		// Shuffled merges: additive fields identical, slices as multisets.
		for trial := 0; trial < 4; trial++ {
			perm := rng.Perm(k)
			merged := inject.NewStats(full.App, full.Scenario, full.Scheme, full.Model)
			for _, i := range perm {
				if err := merged.Merge(shards[i]); err != nil {
					t.Fatalf("k=%d perm=%v: %v", k, perm, err)
				}
			}
			if merged.Total != full.Total ||
				!reflect.DeepEqual(merged.Counts, full.Counts) ||
				!reflect.DeepEqual(merged.ByLocation, full.ByLocation) ||
				merged.Window != full.Window ||
				merged.WatchdogDetections != full.WatchdogDetections {
				t.Errorf("k=%d perm=%v: additive fields differ from single-run stats", k, perm)
			}
			if !sameUint64Multiset(merged.CrashLatencies, full.CrashLatencies) {
				t.Errorf("k=%d perm=%v: CrashLatencies multiset differs", k, perm)
			}
			if len(merged.Results) != len(full.Results) {
				t.Errorf("k=%d perm=%v: %d merged results, want %d",
					k, perm, len(merged.Results), len(full.Results))
			}
		}
	}
}

func sameUint64Multiset(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]uint64(nil), a...)
	bs := append([]uint64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return reflect.DeepEqual(as, bs)
}

// TestStatsMergeRejectsForeignCampaign pins the identity guard: merging
// aggregates from different apps, scenarios, or schemes is an error, not a
// silent conflation.
func TestStatsMergeRejectsForeignCampaign(t *testing.T) {
	base := inject.NewStats("ftpd", "Client1", encoding.SchemeX86, "")
	for _, o := range []*inject.Stats{
		inject.NewStats("sshd", "Client1", encoding.SchemeX86, ""),
		inject.NewStats("ftpd", "Client2", encoding.SchemeX86, ""),
		inject.NewStats("ftpd", "Client1", encoding.SchemeParity, ""),
		inject.NewStats("ftpd", "Client1", encoding.SchemeX86, "instskip"),
	} {
		if err := base.Merge(o); err == nil {
			t.Errorf("merge of %s/%s/%s model=%s into ftpd/Client1/x86 bitflip succeeded",
				o.App, o.Scenario, o.Scheme, o.Model)
		}
	}
	// "" and "bitflip" are the same model: both canonicalize, so explicit
	// naming merges with the legacy zero value.
	if err := base.Merge(inject.NewStats("ftpd", "Client1", encoding.SchemeX86, "bitflip")); err != nil {
		t.Errorf("merge of matching empty stats failed: %v", err)
	}
}
