package inject

import (
	"fmt"

	"faultsec/internal/classify"
	"faultsec/internal/encoding"
)

// Merge folds another aggregate of the same campaign into s. It is the
// recombination step for partitioned campaigns: split the experiment
// enumeration into shards, aggregate each shard independently, and merge
// the shard Stats back together — the additive fields (Total, Counts,
// ByLocation, Window, WatchdogDetections) equal the single-run aggregate
// regardless of merge order, because Add only ever increments them.
//
// The slice fields (CrashLatencies, Results) are concatenated, so their
// order reflects merge order: merging contiguous shards in enumeration
// order reproduces the single-run slices exactly, while any other order
// yields a permutation of them. Callers that need the canonical order
// (the fleet coordinator, for byte-identical Stats) merge shards in plan
// order; callers that only read distributions (internal/report's tables
// and the Figure 4 latency histogram) may merge in any order.
//
// Both aggregates must describe the same app, scenario, scheme, and fault
// model; merging across campaign identities would silently conflate
// populations.
func (s *Stats) Merge(o *Stats) error {
	if s.App != o.App || s.Scenario != o.Scenario ||
		encoding.SchemeName(s.Scheme) != encoding.SchemeName(o.Scheme) || s.Model != o.Model {
		return fmt.Errorf("inject: merge of mismatched campaigns: %s/%s/%s model=%s vs %s/%s/%s model=%s",
			s.App, s.Scenario, encoding.SchemeName(s.Scheme), s.Model,
			o.App, o.Scenario, encoding.SchemeName(o.Scheme), o.Model)
	}
	s.Total += o.Total
	for outcome, n := range o.Counts {
		s.Counts[outcome] += n
	}
	for loc, m := range o.ByLocation {
		locM := s.ByLocation[loc]
		if locM == nil {
			locM = make(map[classify.Outcome]int, len(m))
			s.ByLocation[loc] = locM
		}
		for outcome, n := range m {
			locM[outcome] += n
		}
	}
	s.CrashLatencies = append(s.CrashLatencies, o.CrashLatencies...)
	s.Window.Crashes += o.Window.Crashes
	s.Window.LongLatency += o.Window.LongLatency
	s.Window.WroteInWindow += o.Window.WroteInWindow
	s.Window.LongAndWrote += o.Window.LongAndWrote
	s.WatchdogDetections += o.WatchdogDetections
	s.Results = append(s.Results, o.Results...)
	return nil
}
