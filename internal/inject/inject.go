// Package inject implements the study's error-injection machinery: an
// NFTAPE-style debugger-based injector over the VM (run to a breakpoint at
// the target instruction, flip one bit, continue), selective-exhaustive
// campaign enumeration over the branch instructions of the authentication
// functions, a parallel campaign runner, and the random whole-text
// injection testbed from the paper's §7.
package inject

import (
	"errors"
	"fmt"

	"faultsec/internal/classify"
	"faultsec/internal/disasm"
	"faultsec/internal/encoding"
	"faultsec/internal/kernel"
	"faultsec/internal/target"
	"faultsec/internal/vm"
	"faultsec/internal/x86"
)

// Target is one instruction selected for injection.
type Target struct {
	// Func is the function containing the instruction.
	Func string
	// Addr is the instruction's virtual address.
	Addr uint32
	// Raw is the pristine encoding.
	Raw []byte
	// Inst is the decoded instruction.
	Inst x86.Inst
}

// Bits returns the number of single-bit experiments this target yields.
func (t Target) Bits() int { return len(t.Raw) * 8 }

// isBranchTarget reports whether a decoded instruction belongs to the
// paper's "branch instruction" target population: all conditional branches
// (2-byte and 6-byte jcc — the Table 2 locations), plus the short
// intra-function transfers (jmp rel8, loop/jecxz, ret) that populate the
// small MISC row of Table 3. Long-range transfers (call rel32, jmp rel32)
// are not branch instructions in the paper's sense; their 32-bit operands
// would otherwise dominate the injected-bit population.
func isBranchTarget(in *x86.Inst, raw []byte) bool {
	switch in.Op {
	case x86.OpJcc, x86.OpLoop, x86.OpLoopE, x86.OpLoopNE, x86.OpJCXZ, x86.OpRet:
		return true
	case x86.OpJmp:
		return len(raw) == 2 // jmp rel8 only
	}
	return false
}

// Targets enumerates the branch instructions of the app's authentication
// functions, in address order — the selective-exhaustive target set.
func Targets(app *target.App) ([]Target, error) {
	var out []Target
	for _, fname := range app.AuthFuncs {
		f, ok := app.Image.FuncByName(fname)
		if !ok {
			return nil, fmt.Errorf("inject: function %q not in image", fname)
		}
		entries := disasm.Sweep(app.Image.Text, app.Image.TextBase,
			f.Start-app.Image.TextBase, f.End-app.Image.TextBase)
		for _, e := range entries {
			if e.Bad {
				return nil, fmt.Errorf("inject: undecodable byte at %#x in %s", e.Addr, fname)
			}
			if isBranchTarget(&e.Inst, e.Raw) {
				raw := make([]byte, len(e.Raw))
				copy(raw, e.Raw)
				out = append(out, Target{Func: fname, Addr: e.Addr, Raw: raw, Inst: e.Inst})
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("inject: no branch instructions in %v", app.AuthFuncs)
	}
	return out, nil
}

// TotalBits returns the number of experiments (one per bit) for a target
// set — the paper's per-client run count.
func TotalBits(targets []Target) int {
	n := 0
	for _, t := range targets {
		n += t.Bits()
	}
	return n
}

// GoldenRun executes one fault-free session and records the golden
// behaviour. It fails if the fault-free server does not exit cleanly.
func GoldenRun(app *target.App, sc target.Scenario, fuel uint64) (*classify.Golden, error) {
	client := sc.New()
	k := kernel.New(client)
	ld, err := app.Image.Load(k, nil)
	if err != nil {
		return nil, fmt.Errorf("inject: golden load: %w", err)
	}
	m := ld.Machine
	if fuel != 0 {
		m.Fuel = fuel
	}
	runErr := m.Run()
	var exit *vm.ExitStatus
	if !errors.As(runErr, &exit) {
		return nil, fmt.Errorf("inject: golden run of %s/%s did not exit cleanly: %w\ntranscript:\n%s",
			app.Name, sc.Name, runErr, k.Transcript.String())
	}
	if client.Granted() != sc.ShouldGrant {
		return nil, fmt.Errorf("inject: golden run of %s/%s granted=%v, want %v",
			app.Name, sc.Name, client.Granted(), sc.ShouldGrant)
	}
	return &classify.Golden{
		ServerBytes: k.Transcript.ServerBytes(),
		Granted:     client.Granted(),
		ExitCode:    exit.Code,
		Steps:       m.Steps,
	}, nil
}

// MutationKind selects what the injector does at the breakpoint.
type MutationKind int

// Mutation kinds.
const (
	// MutBytes replaces the target instruction's bytes in memory (the
	// paper's debugger protocol). The corruption is persistent: every
	// subsequent execution of the instruction runs the corrupted bytes.
	MutBytes MutationKind = iota
	// MutSkip advances EIP past the target instruction without executing
	// it — the standard instruction-skip fault-attack model. The skip is
	// transient: only the breakpointed execution is skipped; later
	// executions run the pristine instruction.
	MutSkip
	// MutReg XORs a mask into a general-purpose register at the
	// breakpoint — a transient register corruption. Memory is untouched.
	MutReg
)

// Mutation describes one injection action, produced by a fault model
// (internal/faultmodel) and applied by the injector when the run reaches
// the target instruction.
type Mutation struct {
	// Kind selects which of the fields below are meaningful.
	Kind MutationKind
	// Bytes is the full replacement encoding of the target instruction
	// (MutBytes).
	Bytes []byte
	// SkipLen is the EIP advance in bytes (MutSkip); normally the target
	// instruction's length.
	SkipLen int
	// Reg and RegXor are the register index and XOR mask (MutReg).
	Reg    uint8
	RegXor uint32
	// SpanStart and SpanEnd delimit the instruction bytes the mutation is
	// attributed to, [SpanStart, SpanEnd), for Table 2/3 error-location
	// accounting. For MutBytes this is the intended corruption span (set
	// even when the replacement happens to equal the original bytes); for
	// MutSkip it is the whole instruction; MutReg corruptions carry no
	// byte span and classify as MISC.
	SpanStart int
	SpanEnd   int
}

// Apply performs the mutation on a machine stopped at the target
// instruction (EIP == t.Addr).
func (mu *Mutation) Apply(m *vm.Machine, t *Target) error {
	switch mu.Kind {
	case MutSkip:
		m.EIP += uint32(mu.SkipLen)
		return nil
	case MutReg:
		m.SetReg(mu.Reg, m.Reg(mu.Reg)^mu.RegXor)
		return nil
	default:
		if err := m.Mem.Poke(t.Addr, mu.Bytes); err != nil {
			return fmt.Errorf("inject: poke: %w", err)
		}
		return nil
	}
}

// Experiment identifies one injection. The zero model ("" = the paper's
// bitflip model) is fully described by (Target, ByteIdx, Bit, Scheme),
// exactly as before fault models existed, so bitflip experiment values —
// and the journal/fleet index spaces derived from their enumeration order
// — are unchanged. Other models carry their registry name, their
// model-local mutation index within the target, and the resolved Mutation.
type Experiment struct {
	Target  Target
	ByteIdx int
	Bit     int
	Scheme  encoding.Scheme

	// Model is the fault-model name; "" means bitflip (wire-compatible
	// with pre-fault-model enumerations and journals).
	Model string
	// ModelIdx is the mutation index within the target under Model
	// (0 <= ModelIdx < Count(Target)). Bitflip experiments leave it zero
	// and carry the equivalent index as (ByteIdx, Bit).
	ModelIdx int
	// Mut is the resolved mutation for non-bitflip models (bitflip
	// derives its mutation from ByteIdx/Bit/Scheme on demand).
	Mut Mutation
}

// ModelName returns the experiment's fault-model registry name,
// canonicalizing the wire-compatible zero value to "bitflip".
func (e Experiment) ModelName() string {
	if e.Model == "" {
		return "bitflip"
	}
	return e.Model
}

// ModelOf returns the canonical fault-model name of an experiment list
// ("bitflip" for an empty list — the zero model).
func ModelOf(exps []Experiment) string {
	if len(exps) == 0 {
		return "bitflip"
	}
	return exps[0].ModelName()
}

// CorruptedBytes returns the instruction bytes this experiment executes.
// Valid for byte-replacement mutations (the bitflip family); skip and
// register mutations leave the instruction bytes pristine and return them
// unchanged.
func (e Experiment) CorruptedBytes() []byte {
	if e.Model != "" {
		if e.Mut.Kind != MutBytes {
			out := make([]byte, len(e.Target.Raw))
			copy(out, e.Target.Raw)
			return out
		}
		return e.Mut.Bytes
	}
	return encoding.Corrupt(e.Target.Raw, e.ByteIdx, e.Bit, e.Scheme)
}

// Mutation resolves the experiment's injection action.
func (e Experiment) Mutation() Mutation {
	if e.Model != "" {
		return e.Mut
	}
	return Mutation{
		Kind:      MutBytes,
		Bytes:     e.CorruptedBytes(),
		SpanStart: e.ByteIdx,
		SpanEnd:   e.ByteIdx + 1,
	}
}

// Location classifies the experiment for the paper's Table 2/3 error-
// location breakdown. Bitflip attributes the flipped byte exactly as the
// original study; byte-span mutations are attributed to their span (the
// lowest corrupted byte decides when a span straddles opcode and
// operand), and register corruptions — which touch no instruction byte —
// count under MISC.
func (e Experiment) Location() classify.Location {
	if e.Model == "" {
		return classify.LocationOf(&e.Target.Inst, e.Target.Raw, e.ByteIdx)
	}
	if e.Mut.Kind == MutReg {
		return classify.LocMISC
	}
	return classify.LocationOfSpan(&e.Target.Inst, e.Target.Raw, e.Mut.SpanStart, e.Mut.SpanEnd)
}

// Result is the classified outcome of one experiment.
type Result struct {
	Experiment Experiment
	Outcome    classify.Outcome
	Location   classify.Location
	// Activated mirrors Outcome != NA, kept for convenience.
	Activated bool
	// FaultKind is the crash signal class for SD/FSV-with-crash runs
	// (empty otherwise).
	FaultKind string
	// CrashLatency is the instruction count between activation and crash
	// (Figure 4), valid when the run crashed.
	CrashLatency uint64
	// Crashed reports whether the run ended in a processor fault
	// (regardless of classification).
	Crashed bool
	// Granted is the client's access observation.
	Granted bool
	// BytesInWindow counts server-to-client bytes written between error
	// activation and the end of the run — the network activity inside the
	// transient window of vulnerability (§5.4: "erroneous messages were
	// sent out").
	BytesInWindow int
	// DetectedByWatchdog reports that the control-flow watchdog (when
	// enabled) terminated the run.
	DetectedByWatchdog bool
}

// RunOne executes a single injection experiment against a fresh server
// instance and classifies it against the golden run.
func RunOne(app *target.App, sc target.Scenario, golden *classify.Golden,
	ex Experiment, fuel uint64) (Result, error) {
	return RunOneWatched(app, sc, golden, ex, fuel, nil)
}

// RunOneWatched is RunOne with an optional control-flow watchdog: when
// cfValid is non-nil, the machine stops with a CFE detection as soon as
// EIP leaves the program's known instruction boundaries (a software
// signature checker in the style of the paper's related work).
func RunOneWatched(app *target.App, sc target.Scenario, golden *classify.Golden,
	ex Experiment, fuel uint64, cfValid map[uint32]struct{}) (Result, error) {
	client := sc.New()
	k := kernel.New(client)
	ld, err := app.Image.Load(k, nil)
	if err != nil {
		return Result{}, fmt.Errorf("inject: load: %w", err)
	}
	m := ld.Machine
	if fuel != 0 {
		m.Fuel = fuel
	}
	m.CFValid = cfValid

	// Debugger protocol: run to the target instruction, apply the fault
	// model's mutation (corrupt bytes, skip, or register flip), resume.
	m.SetBreakpoint(ex.Target.Addr)
	runErr := m.Run()
	activated := false
	var activationSteps uint64
	bytesAtActivation := 0
	var bp *vm.BreakpointHit
	if errors.As(runErr, &bp) {
		activated = true
		activationSteps = m.Steps
		bytesAtActivation = len(k.Transcript.ServerBytes())
		mut := ex.Mutation()
		if applyErr := mut.Apply(m, &ex.Target); applyErr != nil {
			return Result{}, applyErr
		}
		m.ClearBreakpoint(ex.Target.Addr)
		runErr = m.Run()
	}

	serverBytes := k.Transcript.ServerBytes()
	run := &classify.Run{
		Activated:       activated,
		Err:             runErr,
		ServerBytes:     serverBytes,
		Granted:         client.Granted(),
		ActivationSteps: activationSteps,
		EndSteps:        m.Steps,
	}
	return ResultFromRun(golden, ex, run, sc.ShouldGrant, len(serverBytes)-bytesAtActivation), nil
}

// ResultFromRun classifies one completed (possibly injected) session into
// a Result. bytesInWindow is the server-to-client byte count between
// activation and the end of the run; it is ignored for non-activated runs.
// The campaign engine's snapshot path builds results through this exact
// function so that its classification is bit-identical to the naive path.
func ResultFromRun(golden *classify.Golden, ex Experiment, run *classify.Run,
	shouldGrant bool, bytesInWindow int) Result {
	outcome := classify.Classify(golden, run, shouldGrant)
	res := Result{
		Experiment: ex,
		Outcome:    outcome,
		Location:   ex.Location(),
		Activated:  run.Activated,
		Granted:    run.Granted,
	}
	if run.Activated {
		res.BytesInWindow = bytesInWindow
	}
	if fault, crashed := run.Crashed(); crashed {
		res.Crashed = true
		res.FaultKind = fault.Kind.Signal()
		res.CrashLatency = run.CrashLatency()
		res.DetectedByWatchdog = fault.Kind == vm.FaultCFE
	}
	return res
}

// Enumerate lists every single-bit experiment for the target set under the
// given scheme, in deterministic order. It is the bitflip fault model's
// shared implementation: faultmodel's "bitflip" delegates here, so the
// model's enumeration is byte-for-byte the pre-fault-model one.
func Enumerate(targets []Target, scheme encoding.Scheme) []Experiment {
	out := make([]Experiment, 0, TotalBits(targets))
	for _, t := range targets {
		for byteIdx := 0; byteIdx < len(t.Raw); byteIdx++ {
			for bit := 0; bit < 8; bit++ {
				out = append(out, Experiment{
					Target:  t,
					ByteIdx: byteIdx,
					Bit:     bit,
					Scheme:  scheme,
				})
			}
		}
	}
	return out
}

// ValidInstructionStarts returns the set of instruction-start addresses of
// the pristine program — the signature database the control-flow watchdog
// checks EIP against.
func ValidInstructionStarts(app *target.App) map[uint32]struct{} {
	entries := disasm.Sweep(app.Image.Text, app.Image.TextBase, 0, uint32(len(app.Image.Text)))
	out := make(map[uint32]struct{}, len(entries))
	for _, e := range entries {
		if !e.Bad {
			out[e.Addr] = struct{}{}
		}
	}
	return out
}
