// Package inject implements the study's error-injection machinery: an
// NFTAPE-style debugger-based injector over the VM (run to a breakpoint at
// the target instruction, flip one bit, continue), selective-exhaustive
// campaign enumeration over the branch instructions of the authentication
// functions, a parallel campaign runner, and the random whole-text
// injection testbed from the paper's §7.
package inject

import (
	"errors"
	"fmt"

	"faultsec/internal/classify"
	"faultsec/internal/disasm"
	"faultsec/internal/encoding"
	"faultsec/internal/kernel"
	"faultsec/internal/target"
	"faultsec/internal/vm"
	"faultsec/internal/x86"
)

// Target is one instruction selected for injection.
type Target struct {
	// Func is the function containing the instruction.
	Func string
	// Addr is the instruction's virtual address.
	Addr uint32
	// Raw is the pristine encoding.
	Raw []byte
	// Inst is the decoded instruction.
	Inst x86.Inst
}

// Bits returns the number of single-bit experiments this target yields.
func (t Target) Bits() int { return len(t.Raw) * 8 }

// isBranchTarget reports whether a decoded instruction belongs to the
// paper's "branch instruction" target population: all conditional branches
// (2-byte and 6-byte jcc — the Table 2 locations), plus the short
// intra-function transfers (jmp rel8, loop/jecxz, ret) that populate the
// small MISC row of Table 3. Long-range transfers (call rel32, jmp rel32)
// are not branch instructions in the paper's sense; their 32-bit operands
// would otherwise dominate the injected-bit population.
func isBranchTarget(in *x86.Inst, raw []byte) bool {
	switch in.Op {
	case x86.OpJcc, x86.OpLoop, x86.OpLoopE, x86.OpLoopNE, x86.OpJCXZ, x86.OpRet:
		return true
	case x86.OpJmp:
		return len(raw) == 2 // jmp rel8 only
	}
	return false
}

// Targets enumerates the branch instructions of the app's authentication
// functions, in address order — the selective-exhaustive target set.
func Targets(app *target.App) ([]Target, error) {
	var out []Target
	for _, fname := range app.AuthFuncs {
		f, ok := app.Image.FuncByName(fname)
		if !ok {
			return nil, fmt.Errorf("inject: function %q not in image", fname)
		}
		entries := disasm.Sweep(app.Image.Text, app.Image.TextBase,
			f.Start-app.Image.TextBase, f.End-app.Image.TextBase)
		for _, e := range entries {
			if e.Bad {
				return nil, fmt.Errorf("inject: undecodable byte at %#x in %s", e.Addr, fname)
			}
			if isBranchTarget(&e.Inst, e.Raw) {
				raw := make([]byte, len(e.Raw))
				copy(raw, e.Raw)
				out = append(out, Target{Func: fname, Addr: e.Addr, Raw: raw, Inst: e.Inst})
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("inject: no branch instructions in %v", app.AuthFuncs)
	}
	return out, nil
}

// TotalBits returns the number of experiments (one per bit) for a target
// set — the paper's per-client run count.
func TotalBits(targets []Target) int {
	n := 0
	for _, t := range targets {
		n += t.Bits()
	}
	return n
}

// GoldenRun executes one fault-free session and records the golden
// behaviour. It fails if the fault-free server does not exit cleanly.
func GoldenRun(app *target.App, sc target.Scenario, fuel uint64) (*classify.Golden, error) {
	client := sc.New()
	k := kernel.New(client)
	ld, err := app.Image.Load(k, nil)
	if err != nil {
		return nil, fmt.Errorf("inject: golden load: %w", err)
	}
	m := ld.Machine
	if fuel != 0 {
		m.Fuel = fuel
	}
	runErr := m.Run()
	var exit *vm.ExitStatus
	if !errors.As(runErr, &exit) {
		return nil, fmt.Errorf("inject: golden run of %s/%s did not exit cleanly: %w\ntranscript:\n%s",
			app.Name, sc.Name, runErr, k.Transcript.String())
	}
	if client.Granted() != sc.ShouldGrant {
		return nil, fmt.Errorf("inject: golden run of %s/%s granted=%v, want %v",
			app.Name, sc.Name, client.Granted(), sc.ShouldGrant)
	}
	return &classify.Golden{
		ServerBytes: k.Transcript.ServerBytes(),
		Granted:     client.Granted(),
		ExitCode:    exit.Code,
		Steps:       m.Steps,
	}, nil
}

// Experiment identifies one single-bit injection.
type Experiment struct {
	Target  Target
	ByteIdx int
	Bit     int
	Scheme  encoding.Scheme
}

// CorruptedBytes returns the instruction bytes this experiment executes.
func (e Experiment) CorruptedBytes() []byte {
	return encoding.Corrupt(e.Target.Raw, e.ByteIdx, e.Bit, e.Scheme)
}

// Result is the classified outcome of one experiment.
type Result struct {
	Experiment Experiment
	Outcome    classify.Outcome
	Location   classify.Location
	// Activated mirrors Outcome != NA, kept for convenience.
	Activated bool
	// FaultKind is the crash signal class for SD/FSV-with-crash runs
	// (empty otherwise).
	FaultKind string
	// CrashLatency is the instruction count between activation and crash
	// (Figure 4), valid when the run crashed.
	CrashLatency uint64
	// Crashed reports whether the run ended in a processor fault
	// (regardless of classification).
	Crashed bool
	// Granted is the client's access observation.
	Granted bool
	// BytesInWindow counts server-to-client bytes written between error
	// activation and the end of the run — the network activity inside the
	// transient window of vulnerability (§5.4: "erroneous messages were
	// sent out").
	BytesInWindow int
	// DetectedByWatchdog reports that the control-flow watchdog (when
	// enabled) terminated the run.
	DetectedByWatchdog bool
}

// RunOne executes a single injection experiment against a fresh server
// instance and classifies it against the golden run.
func RunOne(app *target.App, sc target.Scenario, golden *classify.Golden,
	ex Experiment, fuel uint64) (Result, error) {
	return RunOneWatched(app, sc, golden, ex, fuel, nil)
}

// RunOneWatched is RunOne with an optional control-flow watchdog: when
// cfValid is non-nil, the machine stops with a CFE detection as soon as
// EIP leaves the program's known instruction boundaries (a software
// signature checker in the style of the paper's related work).
func RunOneWatched(app *target.App, sc target.Scenario, golden *classify.Golden,
	ex Experiment, fuel uint64, cfValid map[uint32]struct{}) (Result, error) {
	client := sc.New()
	k := kernel.New(client)
	ld, err := app.Image.Load(k, nil)
	if err != nil {
		return Result{}, fmt.Errorf("inject: load: %w", err)
	}
	m := ld.Machine
	if fuel != 0 {
		m.Fuel = fuel
	}
	m.CFValid = cfValid

	// Debugger protocol: run to the target instruction, corrupt it, resume.
	m.SetBreakpoint(ex.Target.Addr)
	runErr := m.Run()
	activated := false
	var activationSteps uint64
	bytesAtActivation := 0
	var bp *vm.BreakpointHit
	if errors.As(runErr, &bp) {
		activated = true
		activationSteps = m.Steps
		bytesAtActivation = len(k.Transcript.ServerBytes())
		if pokeErr := m.Mem.Poke(ex.Target.Addr, ex.CorruptedBytes()); pokeErr != nil {
			return Result{}, fmt.Errorf("inject: poke: %w", pokeErr)
		}
		m.ClearBreakpoint(ex.Target.Addr)
		runErr = m.Run()
	}

	serverBytes := k.Transcript.ServerBytes()
	run := &classify.Run{
		Activated:       activated,
		Err:             runErr,
		ServerBytes:     serverBytes,
		Granted:         client.Granted(),
		ActivationSteps: activationSteps,
		EndSteps:        m.Steps,
	}
	return ResultFromRun(golden, ex, run, sc.ShouldGrant, len(serverBytes)-bytesAtActivation), nil
}

// ResultFromRun classifies one completed (possibly injected) session into
// a Result. bytesInWindow is the server-to-client byte count between
// activation and the end of the run; it is ignored for non-activated runs.
// The campaign engine's snapshot path builds results through this exact
// function so that its classification is bit-identical to the naive path.
func ResultFromRun(golden *classify.Golden, ex Experiment, run *classify.Run,
	shouldGrant bool, bytesInWindow int) Result {
	outcome := classify.Classify(golden, run, shouldGrant)
	res := Result{
		Experiment: ex,
		Outcome:    outcome,
		Location:   classify.LocationOf(&ex.Target.Inst, ex.Target.Raw, ex.ByteIdx),
		Activated:  run.Activated,
		Granted:    run.Granted,
	}
	if run.Activated {
		res.BytesInWindow = bytesInWindow
	}
	if fault, crashed := run.Crashed(); crashed {
		res.Crashed = true
		res.FaultKind = fault.Kind.Signal()
		res.CrashLatency = run.CrashLatency()
		res.DetectedByWatchdog = fault.Kind == vm.FaultCFE
	}
	return res
}

// Enumerate lists every single-bit experiment for the target set under the
// given scheme, in deterministic order.
func Enumerate(targets []Target, scheme encoding.Scheme) []Experiment {
	var out []Experiment
	for _, t := range targets {
		for byteIdx := 0; byteIdx < len(t.Raw); byteIdx++ {
			for bit := 0; bit < 8; bit++ {
				out = append(out, Experiment{
					Target:  t,
					ByteIdx: byteIdx,
					Bit:     bit,
					Scheme:  scheme,
				})
			}
		}
	}
	return out
}

// ValidInstructionStarts returns the set of instruction-start addresses of
// the pristine program — the signature database the control-flow watchdog
// checks EIP against.
func ValidInstructionStarts(app *target.App) map[uint32]struct{} {
	entries := disasm.Sweep(app.Image.Text, app.Image.TextBase, 0, uint32(len(app.Image.Text)))
	out := make(map[uint32]struct{}, len(entries))
	for _, e := range entries {
		if !e.Bad {
			out[e.Addr] = struct{}{}
		}
	}
	return out
}
