package inject_test

import (
	"testing"

	"faultsec/internal/inject"
	"faultsec/internal/kernel"
	"faultsec/internal/target"
)

// goldenLines pins the exact server-side protocol lines of every fault-free
// scenario. Any change to the servers, the compiler, the assembler, the
// interpreter, or the kernel that alters observable behaviour fails here —
// which matters doubly in this repository, because the golden transcripts
// are the baseline every injection outcome is classified against.
var goldenLines = map[string][]string{
	"ftpd/Client1": {
		"220 miniftpd 2.6.0 FTP server ready.",
		"331 Password required for alice.",
		"530 Login incorrect.",
		"221 Goodbye.",
	},
	"ftpd/Client2": {
		"220 miniftpd 2.6.0 FTP server ready.",
		"331 Password required for alice.",
		"230 User alice logged in.",
		"150 Opening ASCII mode data connection.",
		"DATA Welcome to the mini FTP archive.",
		"226 Transfer complete.",
		"150 Opening ASCII mode data connection.",
		"DATA 00112233445566778899aabbccddeeff",
		"226 Transfer complete.",
		"221 Goodbye.",
	},
	"ftpd/Client3": {
		"220 miniftpd 2.6.0 FTP server ready.",
		"331 Password required.",
		"530 Login incorrect.",
		"221 Goodbye.",
	},
	"ftpd/Client4": {
		"220 miniftpd 2.6.0 FTP server ready.",
		"331 Guest login ok, send your complete e-mail address as password.",
		"230 Guest login ok, access restrictions apply.",
		"150 Opening ASCII mode data connection.",
		"DATA Welcome to the mini FTP archive.",
		"226 Transfer complete.",
		"550 Permission denied.",
		"221 Goodbye.",
	},
	"sshd/Client1": {
		"SSH-1.99-minisshd_1.2.30",
		"WELCOME minisshd protocol ready",
		"AUTH_FAILED rhosts",
		"AUTH_FAILED rsa",
		"AUTH_FAILED password",
		"AUTH_FAILED password",
		"DISCONNECT Too many authentication failures.",
	},
	"sshd/Client2": {
		"SSH-1.99-minisshd_1.2.30",
		"WELCOME minisshd protocol ready",
		"AUTH_FAILED rhosts",
		"AUTH_FAILED rsa",
		"AUTH_SUCCESS password",
		"alice",
		"EXIT_STATUS 0",
		"BYE",
	},
}

func TestGoldenTranscriptSnapshots(t *testing.T) {
	for _, app := range []*target.App{ftpApp(t), sshApp(t)} {
		for _, sc := range app.Scenarios {
			key := app.Name + "/" + sc.Name
			t.Run(key, func(t *testing.T) {
				want, ok := goldenLines[key]
				if !ok {
					t.Fatalf("no snapshot for %s", key)
				}
				client := sc.New()
				k := kernel.New(client)
				ld, err := app.Image.Load(k, nil)
				if err != nil {
					t.Fatal(err)
				}
				_ = ld.Machine.Run()
				got := k.Transcript.ServerLines()
				if len(got) != len(want) {
					t.Fatalf("server lines = %d, want %d:\n%s",
						len(got), len(want), k.Transcript.String())
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("line %d = %q, want %q", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestGoldenStepCountsStable pins the retired-instruction counts of the
// golden runs within a coarse band: a large unexplained jump would change
// the Figure 4 latency distribution and campaign runtimes.
func TestGoldenStepCountsStable(t *testing.T) {
	for _, app := range []*target.App{ftpApp(t), sshApp(t)} {
		for _, sc := range app.Scenarios {
			g, err := inject.GoldenRun(app, sc, 0)
			if err != nil {
				t.Fatalf("%s/%s: %v", app.Name, sc.Name, err)
			}
			if g.Steps < 10_000 || g.Steps > 320_000 {
				t.Errorf("%s/%s: golden run retires %d instructions, outside [10k, 320k]",
					app.Name, sc.Name, g.Steps)
			}
		}
	}
}
