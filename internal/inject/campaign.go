package inject

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"faultsec/internal/classify"
	"faultsec/internal/encoding"
	"faultsec/internal/target"
)

// DefaultFuel bounds each injected run. Fault-free sessions retire well
// under 100k instructions; corrupted runs stuck in loops hit this budget
// and classify as hangs (FSV).
const DefaultFuel = 400_000

// Config parameterizes one campaign: one application, one client access
// pattern, one encoding scheme, every bit of every branch instruction in
// the authentication functions.
type Config struct {
	App      *target.App
	Scenario target.Scenario
	Scheme   encoding.Scheme
	// Fuel is the per-run instruction budget; 0 means DefaultFuel.
	Fuel uint64
	// Parallelism is the worker count; 0 means GOMAXPROCS.
	Parallelism int
	// KeepResults retains every per-run Result in Stats.Results.
	KeepResults bool
	// Watchdog enables the control-flow checker for every run (ablation:
	// what does a software signature checker catch that the encoding fix
	// does, and vice versa).
	Watchdog bool
	// Progress, when non-nil, receives (done, total) after each run.
	Progress func(done, total int)
}

// Stats aggregates a campaign.
type Stats struct {
	App      string
	Scenario string
	Scheme   encoding.Scheme
	// Model is the canonical fault-model name ("bitflip" for the paper's
	// single-bit model). Executors derive it from the experiment list via
	// ModelOf, so every backend stamps it identically.
	Model string

	// Total is the number of runs (one per injected bit).
	Total int
	// Counts maps each outcome to its run count.
	Counts map[classify.Outcome]int
	// ByLocation maps Table 2 locations to per-outcome counts.
	ByLocation map[classify.Location]map[classify.Outcome]int
	// CrashLatencies holds the activation-to-crash instruction counts of
	// every crashed run (Figure 4 input).
	CrashLatencies []uint64
	// Window summarizes network activity inside crash windows (§5.4).
	Window TransientWindow
	// WatchdogDetections counts runs terminated by the control-flow
	// checker (only when Config.Watchdog was set).
	WatchdogDetections int
	// Results holds per-run detail when Config.KeepResults is set.
	Results []Result
}

// TransientWindow aggregates the paper's §5.4 analysis: how long crashed
// runs keep executing after activation, and whether they talk to the
// network inside that window.
type TransientWindow struct {
	// Crashes is the number of crashed runs.
	Crashes int
	// LongLatency counts crashes more than 100 instructions after
	// activation (the paper's 8.5% tail).
	LongLatency int
	// WroteInWindow counts crashed runs that sent bytes to the client
	// between activation and the crash.
	WroteInWindow int
	// LongAndWrote counts long-latency crashes that also wrote — the
	// paper's "erroneous messages were sent out" cases.
	LongAndWrote int
}

// Activated returns the number of activated runs (everything but NA).
func (s *Stats) Activated() int {
	return s.Total - s.Counts[classify.OutcomeNA]
}

// PctOfActivated returns a count as a percentage of activated runs.
func (s *Stats) PctOfActivated(o classify.Outcome) float64 {
	a := s.Activated()
	if a == 0 {
		return 0
	}
	return 100 * float64(s.Counts[o]) / float64(a)
}

// ManifestedBreakdown returns the BRK+FSV counts per location — the
// paper's Table 3 rows (it describes the table as "Break-ins and Fail
// Silence Violations by Location").
func (s *Stats) ManifestedBreakdown() map[classify.Location]int {
	out := make(map[classify.Location]int, len(s.ByLocation))
	for loc, m := range s.ByLocation {
		out[loc] = m[classify.OutcomeBRK] + m[classify.OutcomeFSV]
	}
	return out
}

// NewStats returns an empty aggregate for one campaign. It is exported so
// alternative execution backends (internal/campaign, internal/fleet)
// aggregate through the exact same code path as the naive runner. model is
// the canonical fault-model name; "" means bitflip.
func NewStats(app, scenario string, scheme encoding.Scheme, model string) *Stats {
	if model == "" {
		model = "bitflip"
	}
	return &Stats{
		App:        app,
		Scenario:   scenario,
		Scheme:     scheme,
		Model:      model,
		Counts:     make(map[classify.Outcome]int),
		ByLocation: make(map[classify.Location]map[classify.Outcome]int),
	}
}

// Add folds one run into the aggregate. Results must be added in
// experiment-enumeration order for deterministic CrashLatencies.
func (s *Stats) Add(r Result) {
	s.Total++
	s.Counts[r.Outcome]++
	locM := s.ByLocation[r.Location]
	if locM == nil {
		locM = make(map[classify.Outcome]int)
		s.ByLocation[r.Location] = locM
	}
	locM[r.Outcome]++
	if r.Crashed {
		s.CrashLatencies = append(s.CrashLatencies, r.CrashLatency)
		s.Window.Crashes++
		long := r.CrashLatency > 100
		if long {
			s.Window.LongLatency++
		}
		if r.BytesInWindow > 0 {
			s.Window.WroteInWindow++
			if long {
				s.Window.LongAndWrote++
			}
		}
	}
	if r.DetectedByWatchdog {
		s.WatchdogDetections++
	}
}

// CanceledError reports a campaign stopped by context cancellation (or
// deadline) before completing: Done of Total runs had finished, and — when
// the campaign was journaled — every finished run is on disk, so the
// campaign is resumable. It unwraps to the context error, so
// errors.Is(err, context.Canceled) still matches.
type CanceledError struct {
	Done, Total int
	Cause       error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("campaign canceled after %d/%d runs", e.Done, e.Total)
}

func (e *CanceledError) Unwrap() error { return e.Cause }

// Backend is a pluggable campaign executor. internal/campaign registers
// its snapshot fast-forward engine here, which makes every Run /
// RunExperiments / RunRandom caller use it transparently.
type Backend func(ctx context.Context, cfg Config, experiments []Experiment) (*Stats, error)

var backend Backend

// SetBackend installs the campaign execution backend. It must be called
// before campaigns start (package init time); a nil backend restores the
// naive per-run path.
func SetBackend(b Backend) { backend = b }

// Run executes the full selective-exhaustive campaign described by cfg.
func Run(ctx context.Context, cfg Config) (*Stats, error) {
	app, err := cfg.App.ForScheme(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	cfg.App = app
	targets, err := Targets(cfg.App)
	if err != nil {
		return nil, err
	}
	return RunExperiments(ctx, cfg, Enumerate(targets, cfg.Scheme))
}

// RunExperiments executes an explicit experiment list under cfg and
// aggregates deterministically (experiment order). When a backend is
// registered (internal/campaign's snapshot engine), execution delegates to
// it; otherwise every experiment re-executes the server from _start.
func RunExperiments(ctx context.Context, cfg Config, experiments []Experiment) (*Stats, error) {
	if backend != nil {
		return backend(ctx, cfg, experiments)
	}
	return RunExperimentsNaive(ctx, cfg, experiments)
}

// RunExperimentsNaive is the backend-independent reference executor: one
// full from-scratch server run per experiment, in parallel. It is exported
// as the differential-testing baseline for alternative backends.
func RunExperimentsNaive(ctx context.Context, cfg Config, experiments []Experiment) (*Stats, error) {
	fuel := cfg.Fuel
	if fuel == 0 {
		fuel = DefaultFuel
	}
	// Resolve the scheme's image so every run executes the same hardened
	// app the experiment list was enumerated against (ForScheme caches, so
	// a caller that already resolved gets the identical *App back).
	app, err := cfg.App.ForScheme(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	cfg.App = app
	golden, err := GoldenRun(cfg.App, cfg.Scenario, fuel)
	if err != nil {
		return nil, err
	}
	var cfValid map[uint32]struct{}
	if cfg.Watchdog {
		cfValid = ValidInstructionStarts(cfg.App)
	}

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(experiments) && len(experiments) > 0 {
		workers = len(experiments)
	}

	results := make([]Result, len(experiments))
	errs := make([]error, len(experiments))
	indexes := make(chan int)

	var wg sync.WaitGroup
	var done atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				results[i], errs[i] = RunOneWatched(cfg.App, cfg.Scenario, golden, experiments[i], fuel, cfValid)
				d := int(done.Add(1))
				if cfg.Progress != nil {
					cfg.Progress(d, len(experiments))
				}
			}
		}()
	}

feed:
	for i := range experiments {
		select {
		case <-ctx.Done():
			break feed
		case indexes <- i:
		}
	}
	close(indexes)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, &CanceledError{Done: int(done.Load()), Total: len(experiments), Cause: err}
	}
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("inject: experiment %d: %w", i, e)
		}
	}

	stats := NewStats(cfg.App.Name, cfg.Scenario.Name, cfg.Scheme, ModelOf(experiments))
	for _, r := range results {
		stats.Add(r)
	}
	if cfg.KeepResults {
		stats.Results = results
	}
	return stats, nil
}
