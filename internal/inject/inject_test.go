package inject_test

import (
	"context"
	"fmt"
	"testing"

	"faultsec/internal/classify"
	"faultsec/internal/encoding"
	"faultsec/internal/ftpd"
	"faultsec/internal/inject"
	"faultsec/internal/sshd"
	"faultsec/internal/target"
	"faultsec/internal/x86"
)

func ftpApp(t *testing.T) *target.App {
	t.Helper()
	app, err := ftpd.Build()
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func sshApp(t *testing.T) *target.App {
	t.Helper()
	app, err := sshd.Build()
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestTargetsAreBranchInstructions(t *testing.T) {
	app := ftpApp(t)
	targets, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) < 40 {
		t.Errorf("only %d targets", len(targets))
	}
	var jcc8, jcc32, misc int
	for _, tgt := range targets {
		switch {
		case tgt.Inst.Op == x86.OpJcc && len(tgt.Raw) == 2:
			jcc8++
		case tgt.Inst.Op == x86.OpJcc && len(tgt.Raw) == 6:
			jcc32++
		case tgt.Inst.Op == x86.OpCall:
			t.Errorf("call at %#x should not be a target", tgt.Addr)
		default:
			misc++
		}
		// Every target must be inside an auth function.
		found := false
		for _, fn := range app.AuthFuncs {
			f, _ := app.Image.FuncByName(fn)
			if tgt.Addr >= f.Start && tgt.Addr < f.End {
				found = true
			}
		}
		if !found {
			t.Errorf("target %#x outside auth functions", tgt.Addr)
		}
	}
	if jcc8 == 0 {
		t.Error("no 2-byte conditional branches in target set")
	}
	if jcc32 == 0 {
		t.Error("no 6-byte conditional branches in target set (Table 3 needs 6BC2 rows)")
	}
	if misc == 0 {
		t.Error("no MISC targets (jmp rel8/ret)")
	}
	t.Logf("targets: %d jcc8, %d jcc32, %d misc, %d total bits",
		jcc8, jcc32, misc, inject.TotalBits(targets))
}

func TestGoldenRunsAllScenarios(t *testing.T) {
	for _, app := range []*target.App{ftpApp(t), sshApp(t)} {
		for _, sc := range app.Scenarios {
			g, err := inject.GoldenRun(app, sc, 0)
			if err != nil {
				t.Errorf("%s/%s: %v", app.Name, sc.Name, err)
				continue
			}
			if g.Granted != sc.ShouldGrant {
				t.Errorf("%s/%s: granted=%v, want %v", app.Name, sc.Name, g.Granted, sc.ShouldGrant)
			}
			if g.Steps == 0 || len(g.ServerBytes) == 0 {
				t.Errorf("%s/%s: empty golden run", app.Name, sc.Name)
			}
			if g.Steps > 350_000 {
				t.Errorf("%s/%s: golden run too long (%d steps) for default fuel", app.Name, sc.Name, g.Steps)
			}
		}
	}
}

// TestFigure1JeJneFlip reproduces the paper's Example 1 mechanically: the
// je at the "if (rval)" test in pass() flipped to jne admits a client with
// a wrong password.
func TestFigure1JeJneFlip(t *testing.T) {
	app := ftpApp(t)
	sc, _ := app.Scenario("Client1")
	golden, err := inject.GoldenRun(app, sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}
	brk := 0
	for _, tgt := range targets {
		if tgt.Func != "pass" || tgt.Inst.Op != x86.OpJcc || len(tgt.Raw) != 2 {
			continue
		}
		ex := inject.Experiment{Target: tgt, ByteIdx: 0, Bit: 0, Scheme: encoding.SchemeX86}
		res, err := inject.RunOne(app, sc, golden, ex, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == classify.OutcomeBRK {
			brk++
			if res.Location != classify.Loc2BC {
				t.Errorf("break-in at %#x classified as %s, want 2BC", tgt.Addr, res.Location)
			}
		}
	}
	if brk == 0 {
		t.Error("no je<->jne break-in found in pass() — Figure 1 not reproduced")
	}
	t.Logf("Figure 1: %d single-bit condition reversals in pass() break in", brk)
}

// TestFigure2SSHRhostsFlip reproduces the paper's Example 2: reversing the
// branch on auth_rhosts()'s result in do_authentication() grants a shell.
func TestFigure2SSHRhostsFlip(t *testing.T) {
	app := sshApp(t)
	sc, _ := app.Scenario("Client1")
	golden, err := inject.GoldenRun(app, sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}
	brk := 0
	for _, tgt := range targets {
		if tgt.Inst.Op != x86.OpJcc {
			continue
		}
		ex := inject.Experiment{Target: tgt, ByteIdx: 0, Bit: 0, Scheme: encoding.SchemeX86}
		if len(tgt.Raw) == 6 {
			ex.ByteIdx = 1 // condition lives in the second opcode byte
		}
		res, err := inject.RunOne(app, sc, golden, ex, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == classify.OutcomeBRK {
			brk++
		}
	}
	if brk == 0 {
		t.Error("no condition-reversal break-in found in sshd auth — Figure 2 not reproduced")
	}
	t.Logf("Figure 2: %d condition reversals across sshd auth functions break in", brk)
}

func TestNotActivatedClassification(t *testing.T) {
	// Client3 (unknown user) never reaches the guest-email checks in
	// pass(); injecting there must yield NA, and the run must match the
	// golden transcript bit for bit.
	app := ftpApp(t)
	sc, _ := app.Scenario("Client3")
	golden, err := inject.GoldenRun(app, sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}
	// Find a target that is NA for Client3: try them all, require that at
	// least a third are NA (the paper's FTP campaigns had high NA rates).
	na := 0
	for _, tgt := range targets {
		ex := inject.Experiment{Target: tgt, ByteIdx: 0, Bit: 0, Scheme: encoding.SchemeX86}
		res, err := inject.RunOne(app, sc, golden, ex, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == classify.OutcomeNA {
			na++
			if res.Activated {
				t.Errorf("NA result with Activated=true at %#x", tgt.Addr)
			}
		}
	}
	if na*3 < len(targets) {
		t.Errorf("only %d/%d targets NA for Client3", na, len(targets))
	}
}

func TestExperimentDeterminism(t *testing.T) {
	app := ftpApp(t)
	sc, _ := app.Scenario("Client1")
	golden, err := inject.GoldenRun(app, sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}
	ex := inject.Experiment{Target: targets[3], ByteIdx: 1, Bit: 4, Scheme: encoding.SchemeX86}
	first, err := inject.RunOne(app, sc, golden, ex, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := inject.RunOne(app, sc, golden, ex, 0)
		if err != nil {
			t.Fatal(err)
		}
		if again.Outcome != first.Outcome || again.CrashLatency != first.CrashLatency ||
			again.FaultKind != first.FaultKind {
			t.Fatalf("non-deterministic result: %+v vs %+v", first, again)
		}
	}
}

func TestEnumerateCoversEveryBit(t *testing.T) {
	app := ftpApp(t)
	targets, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}
	exps := inject.Enumerate(targets, encoding.SchemeX86)
	if len(exps) != inject.TotalBits(targets) {
		t.Errorf("enumerated %d experiments, want %d", len(exps), inject.TotalBits(targets))
	}
	seen := make(map[string]bool, len(exps))
	for _, ex := range exps {
		key := fmt.Sprintf("%d:%d:%d", ex.Target.Addr, ex.ByteIdx, ex.Bit)
		if seen[key] {
			t.Fatalf("duplicate experiment %+v", ex)
		}
		seen[key] = true
		if ex.ByteIdx >= len(ex.Target.Raw) || ex.Bit > 7 {
			t.Fatalf("out-of-range experiment %+v", ex)
		}
	}
}

func TestSmallCampaignParallelMatchesSerial(t *testing.T) {
	app := sshApp(t)
	sc, _ := app.Scenario("Client2")
	targets, err := inject.Targets(app)
	if err != nil {
		t.Fatal(err)
	}
	exps := inject.Enumerate(targets[:4], encoding.SchemeX86)
	ctx := context.Background()
	serial, err := inject.RunExperiments(ctx, inject.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, Parallelism: 1,
	}, exps)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := inject.RunExperiments(ctx, inject.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86, Parallelism: 8,
	}, exps)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range classify.Outcomes() {
		if serial.Counts[o] != parallel.Counts[o] {
			t.Errorf("%s: serial %d != parallel %d", o, serial.Counts[o], parallel.Counts[o])
		}
	}
	if serial.Total != len(exps) || parallel.Total != len(exps) {
		t.Errorf("totals %d/%d, want %d", serial.Total, parallel.Total, len(exps))
	}
}

func TestCampaignCancellation(t *testing.T) {
	app := ftpApp(t)
	sc, _ := app.Scenario("Client1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := inject.Run(ctx, inject.Config{
		App: app, Scenario: sc, Scheme: encoding.SchemeX86,
	}); err == nil {
		t.Error("canceled campaign succeeded")
	}
}

func TestRandomExperimentsDeterministic(t *testing.T) {
	app := ftpApp(t)
	a, err := inject.RandomExperiments(app, encoding.SchemeX86, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := inject.RandomExperiments(app, encoding.SchemeX86, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Target.Addr != b[i].Target.Addr || a[i].ByteIdx != b[i].ByteIdx || a[i].Bit != b[i].Bit {
			t.Fatalf("seeded experiments differ at %d", i)
		}
	}
	c, err := inject.RandomExperiments(app, encoding.SchemeX86, 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].Target.Addr == c[i].Target.Addr && a[i].Bit == c[i].Bit {
			same++
		}
	}
	if same == 50 {
		t.Error("different seeds produced identical experiment lists")
	}
}

func TestRandomExperimentBytesInRange(t *testing.T) {
	app := ftpApp(t)
	exps, err := inject.RandomExperiments(app, encoding.SchemeX86, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range exps {
		if ex.ByteIdx < 0 || ex.ByteIdx >= len(ex.Target.Raw) {
			t.Fatalf("byte index %d out of range for %d-byte instruction at %#x",
				ex.ByteIdx, len(ex.Target.Raw), ex.Target.Addr)
		}
		off := ex.Target.Addr - app.Image.TextBase
		if int(off)+len(ex.Target.Raw) > len(app.Image.Text) {
			t.Fatalf("target at %#x overruns text", ex.Target.Addr)
		}
	}
}
