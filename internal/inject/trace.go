package inject

import (
	"errors"
	"fmt"
	"strings"

	"faultsec/internal/disasm"
	"faultsec/internal/kernel"
	"faultsec/internal/target"
	"faultsec/internal/vm"
	"faultsec/internal/x86"
)

// TraceEntry is one traced instruction after error activation.
type TraceEntry struct {
	// Step is the retired-instruction index relative to activation.
	Step uint64
	// Addr is the instruction address.
	Addr uint32
	// Text is the disassembly (or a note for undecodable bytes).
	Text string
	// Raw is the instruction encoding as executed (post-corruption).
	Raw []byte
}

// Trace is the recorded tail of an injected run.
type Trace struct {
	Entries []TraceEntry
	// Truncated reports that the run continued past the entry budget.
	Truncated bool
	// End is the run-terminating condition.
	End error
}

// String renders the trace as a listing.
func (t *Trace) String() string {
	var b strings.Builder
	for _, e := range t.Entries {
		fmt.Fprintf(&b, "%6d  %#08x  % -22x %s\n", e.Step, e.Addr, e.Raw, e.Text)
	}
	if t.Truncated {
		b.WriteString("        ... (trace budget exhausted; run continued)\n")
	}
	fmt.Fprintf(&b, "end: %v\n", t.End)
	return b.String()
}

// TraceRun executes one experiment and records up to maxEntries decoded
// instructions after error activation — a window into exactly what the
// corrupted server does between activation and its fate (the paper's
// transient-window investigation, instruction by instruction).
func TraceRun(app *target.App, sc target.Scenario, ex Experiment,
	fuel uint64, maxEntries int) (*Trace, error) {
	client := sc.New()
	k := kernel.New(client)
	ld, err := app.Image.Load(k, nil)
	if err != nil {
		return nil, fmt.Errorf("inject: trace load: %w", err)
	}
	m := ld.Machine
	if fuel != 0 {
		m.Fuel = fuel
	}
	m.SetBreakpoint(ex.Target.Addr)
	runErr := m.Run()
	var bp *vm.BreakpointHit
	if !errors.As(runErr, &bp) {
		return &Trace{End: runErr}, nil // never activated
	}
	if err := m.Mem.Poke(ex.Target.Addr, ex.CorruptedBytes()); err != nil {
		return nil, fmt.Errorf("inject: trace poke: %w", err)
	}
	m.ClearBreakpoint(ex.Target.Addr)

	tr := &Trace{}
	activationSteps := m.Steps
	for len(tr.Entries) < maxEntries {
		pc := m.EIP
		entry := TraceEntry{Step: m.Steps - activationSteps, Addr: pc}
		if raw, perr := m.Mem.Peek(pc, x86.MaxInstLen); perr == nil {
			if in, derr := x86.Decode(raw); derr == nil {
				entry.Raw = raw[:in.Len]
				entry.Text = disasm.Format(&in, pc)
			} else {
				entry.Raw = raw[:1]
				entry.Text = fmt.Sprintf("(bad %#02x)", raw[0])
			}
		} else {
			entry.Text = "(unmapped)"
		}
		tr.Entries = append(tr.Entries, entry)
		if stepErr := m.Step(); stepErr != nil {
			tr.End = stepErr
			return tr, nil
		}
	}
	tr.Truncated = true
	tr.End = m.Run()
	return tr, nil
}
