// Package disasm provides a linear-sweep disassembler over the x86 subset.
// The injector uses it to enumerate the branch instructions of the
// authentication functions (the paper's selective-exhaustive target set);
// the report tooling uses it for human-readable listings.
package disasm

import (
	"fmt"
	"strings"

	"faultsec/internal/x86"
)

// Entry is one disassembled instruction.
type Entry struct {
	Addr uint32
	Raw  []byte
	Inst x86.Inst
	// Bad marks bytes that failed to decode; Inst is zero and Raw holds
	// the first undecodable byte.
	Bad bool
}

// Text renders the entry as assembly text.
func (e Entry) Text() string {
	if e.Bad {
		return fmt.Sprintf("(bad %#02x)", e.Raw[0])
	}
	return Format(&e.Inst, e.Addr)
}

// Sweep linearly disassembles code (loaded at base) from offset start up to
// end (both relative to base; end<=len(code)). Undecodable bytes produce a
// Bad entry and the sweep resumes at the next byte.
func Sweep(code []byte, base uint32, start, end uint32) []Entry {
	var out []Entry
	off := start
	for off < end {
		lim := off + x86.MaxInstLen
		if lim > uint32(len(code)) {
			lim = uint32(len(code))
		}
		in, err := x86.Decode(code[off:lim])
		if err != nil {
			out = append(out, Entry{
				Addr: base + off,
				Raw:  code[off : off+1],
				Bad:  true,
			})
			off++
			continue
		}
		out = append(out, Entry{
			Addr: base + off,
			Raw:  code[off : off+uint32(in.Len)],
			Inst: in,
		})
		off += uint32(in.Len)
	}
	return out
}

// Format renders one decoded instruction at addr in Intel-ish syntax.
func Format(in *x86.Inst, addr uint32) string {
	mn := x86.Mnemonic(*in)
	next := addr + uint32(in.Len)
	var ops []string
	switch in.Form {
	case x86.FormNone:
	case x86.FormRel:
		ops = append(ops, fmt.Sprintf("%#x", next+uint32(in.Rel)))
	case x86.FormReg:
		ops = append(ops, x86.RegName(in.Reg, in.W))
	case x86.FormRegImm:
		ops = append(ops, x86.RegName(in.Reg, in.W), fmt.Sprintf("%#x", uint32(in.Imm)))
	case x86.FormImm:
		ops = append(ops, fmt.Sprintf("%#x", uint32(in.Imm)))
	case x86.FormAccImm:
		ops = append(ops, x86.RegName(x86.EAX, in.W), fmt.Sprintf("%#x", uint32(in.Imm)))
	case x86.FormRM:
		ops = append(ops, formatRM(&in.RM, in.W))
	case x86.FormRMReg:
		ops = append(ops, formatRM(&in.RM, in.W), x86.RegName(in.Reg, in.W))
	case x86.FormRegRM:
		ops = append(ops, x86.RegName(in.Reg, regWidthFor(in)), formatRM(&in.RM, in.W))
	case x86.FormRMImm:
		ops = append(ops, formatRM(&in.RM, in.W), fmt.Sprintf("%#x", uint32(in.Imm)))
	case x86.FormRegRMImm:
		ops = append(ops, x86.RegName(in.Reg, 4), formatRM(&in.RM, in.W),
			fmt.Sprintf("%#x", uint32(in.Imm)))
	case x86.FormMoffsLoad:
		ops = append(ops, x86.RegName(x86.EAX, in.W), fmt.Sprintf("[%#x]", uint32(in.Imm)))
	case x86.FormMoffsStore:
		ops = append(ops, fmt.Sprintf("[%#x]", uint32(in.Imm)), x86.RegName(x86.EAX, in.W))
	}
	if len(ops) == 0 {
		return mn
	}
	return mn + " " + strings.Join(ops, ", ")
}

// regWidthFor returns the width of the register operand in FormRegRM, which
// differs from the r/m width for movzx/movsx (always a 32-bit destination).
func regWidthFor(in *x86.Inst) uint8 {
	if in.Op == x86.OpMovZX || in.Op == x86.OpMovSX || in.Op == x86.OpCMov {
		return 4
	}
	return in.W
}

func formatRM(rm *x86.RM, w uint8) string {
	if rm.IsReg {
		return x86.RegName(rm.Reg, w)
	}
	var b strings.Builder
	switch w {
	case 1:
		b.WriteString("byte ")
	case 2:
		b.WriteString("word ")
	default:
		b.WriteString("dword ")
	}
	b.WriteByte('[')
	parts := []string{}
	if rm.Base != x86.NoReg {
		parts = append(parts, x86.RegName(uint8(rm.Base), 4))
	}
	if rm.Index != x86.NoReg {
		parts = append(parts, fmt.Sprintf("%s*%d", x86.RegName(uint8(rm.Index), 4), rm.Scale))
	}
	b.WriteString(strings.Join(parts, "+"))
	switch {
	case rm.Disp < 0:
		fmt.Fprintf(&b, "-%#x", uint32(-rm.Disp))
	case rm.Disp > 0 && len(parts) > 0:
		fmt.Fprintf(&b, "+%#x", rm.Disp)
	case rm.Disp != 0 || len(parts) == 0:
		fmt.Fprintf(&b, "%#x", rm.Disp)
	}
	b.WriteByte(']')
	return b.String()
}

// Branches returns the conditional branch instructions in the sweep — the
// study's injection target set. Only genuine conditional branches (2-byte
// jcc rel8 and 6-byte jcc rel32) are included, matching the paper's target
// definition; jmp/call/loop are not conditional branches.
func Branches(entries []Entry) []Entry {
	var out []Entry
	for _, e := range entries {
		if !e.Bad && e.Inst.Op == x86.OpJcc {
			out = append(out, e)
		}
	}
	return out
}
