package disasm_test

import (
	"strings"
	"testing"

	"faultsec/internal/disasm"
	"faultsec/internal/x86"
)

func TestSweepLinear(t *testing.T) {
	code := []byte{
		0x55,       // push ebp
		0x89, 0xE5, // mov ebp, esp
		0x74, 0x02, // je +2
		0x31, 0xC0, // xor eax, eax
		0xC3, // ret
	}
	entries := disasm.Sweep(code, 0x1000, 0, uint32(len(code)))
	if len(entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(entries))
	}
	wantAddrs := []uint32{0x1000, 0x1001, 0x1003, 0x1005, 0x1007}
	for i, e := range entries {
		if e.Addr != wantAddrs[i] {
			t.Errorf("entry %d at %#x, want %#x", i, e.Addr, wantAddrs[i])
		}
		if e.Bad {
			t.Errorf("entry %d bad", i)
		}
	}
}

func TestSweepBadByteResyncs(t *testing.T) {
	code := []byte{0x0F, 0x0B, 0x90} // ud2 then nop
	entries := disasm.Sweep(code, 0, 0, 3)
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3 (two bad bytes + nop)", len(entries))
	}
	if !entries[0].Bad || !entries[1].Bad {
		t.Error("ud2 bytes should be bad entries")
	}
	if entries[2].Bad || entries[2].Inst.Op != x86.OpNop {
		t.Error("sweep did not resync to the nop")
	}
	if !strings.Contains(entries[0].Text(), "bad") {
		t.Errorf("bad entry text = %q", entries[0].Text())
	}
}

func TestBranchesFilter(t *testing.T) {
	code := []byte{
		0x74, 0x02, // je
		0xEB, 0x00, // jmp (unconditional: not in Branches)
		0x0F, 0x85, 1, 0, 0, 0, // jne rel32
		0xE8, 0, 0, 0, 0, // call
		0xC3, // ret
	}
	entries := disasm.Sweep(code, 0, 0, uint32(len(code)))
	branches := disasm.Branches(entries)
	if len(branches) != 2 {
		t.Fatalf("branches = %d, want 2 (jcc only)", len(branches))
	}
	if branches[0].Inst.Cond != x86.CondE || branches[1].Inst.Cond != x86.CondNE {
		t.Error("wrong branches selected")
	}
}

func TestFormat(t *testing.T) {
	tests := []struct {
		bytes []byte
		addr  uint32
		want  string
	}{
		{[]byte{0x74, 0x06}, 0x100, "je 0x108"},
		{[]byte{0x75, 0xFE}, 0x100, "jne 0x100"},
		{[]byte{0x50}, 0, "push eax"},
		{[]byte{0xB8, 0x2A, 0, 0, 0}, 0, "mov eax, 0x2a"},
		{[]byte{0x8B, 0x45, 0x08}, 0, "mov eax, dword [ebp+0x8]"},
		{[]byte{0x8B, 0x45, 0xFC}, 0, "mov eax, dword [ebp-0x4]"},
		{[]byte{0x88, 0x01}, 0, "mov byte [ecx], al"},
		{[]byte{0x85, 0xC0}, 0, "test eax, eax"},
		{[]byte{0xE8, 0x0B, 0, 0, 0}, 0x200, "call 0x210"},
		{[]byte{0xC3}, 0, "ret"},
		{[]byte{0x0F, 0xB6, 0x06}, 0, "movzx eax, byte [esi]"},
		{[]byte{0x8B, 0x04, 0x8D, 0, 0, 0, 0}, 0, "mov eax, dword [ecx*4]"},
		{[]byte{0xCD, 0x80}, 0, "int 0x80"},
	}
	for _, tt := range tests {
		in, err := x86.Decode(tt.bytes)
		if err != nil {
			t.Fatalf("decode % x: %v", tt.bytes, err)
		}
		if got := disasm.Format(&in, tt.addr); got != tt.want {
			t.Errorf("Format(% x) = %q, want %q", tt.bytes, got, tt.want)
		}
	}
}
