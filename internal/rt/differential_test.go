package rt_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"faultsec/internal/kernel"
	"faultsec/internal/rt"
	"faultsec/internal/vm"
)

// expr is a randomly generated integer expression with its Go-evaluated
// value (C semantics: 32-bit wrapping, truncating division).
type expr struct {
	text  string
	value int32
}

// genExpr builds a random expression of bounded depth. Division and
// modulus guard against zero and INT_MIN/-1 so both sides are defined.
func genExpr(rng *rand.Rand, depth int) expr {
	if depth == 0 || rng.Intn(3) == 0 {
		v := int32(rng.Intn(2001) - 1000)
		if v < 0 {
			return expr{fmt.Sprintf("(%d)", v), v}
		}
		return expr{fmt.Sprintf("%d", v), v}
	}
	l := genExpr(rng, depth-1)
	r := genExpr(rng, depth-1)
	switch rng.Intn(10) {
	case 0:
		return expr{"(" + l.text + " + " + r.text + ")", l.value + r.value}
	case 1:
		return expr{"(" + l.text + " - " + r.text + ")", l.value - r.value}
	case 2:
		return expr{"(" + l.text + " * " + r.text + ")", l.value * r.value}
	case 3:
		if r.value == 0 || (l.value == -1<<31 && r.value == -1) {
			return expr{"(" + l.text + " + " + r.text + ")", l.value + r.value}
		}
		return expr{"(" + l.text + " / " + r.text + ")", l.value / r.value}
	case 4:
		if r.value == 0 || (l.value == -1<<31 && r.value == -1) {
			return expr{"(" + l.text + " - " + r.text + ")", l.value - r.value}
		}
		return expr{"(" + l.text + " % " + r.text + ")", l.value % r.value}
	case 5:
		return expr{"(" + l.text + " & " + r.text + ")", l.value & r.value}
	case 6:
		return expr{"(" + l.text + " | " + r.text + ")", l.value | r.value}
	case 7:
		return expr{"(" + l.text + " ^ " + r.text + ")", l.value ^ r.value}
	case 8:
		sh := rng.Intn(8)
		return expr{fmt.Sprintf("(%s << %d)", l.text, sh), l.value << sh}
	default:
		sh := rng.Intn(8)
		return expr{fmt.Sprintf("(%s >> %d)", l.text, sh), l.value >> sh}
	}
}

// TestDifferentialExpressions compiles batches of random expressions
// through the full toolchain (MiniC -> asm -> link -> VM) and compares
// every value with Go's evaluation. One program carries many expressions
// to amortize build cost; the program reports the index of the first
// mismatch (or -1).
func TestDifferentialExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(20010425)) // deterministic: the paper's conference date
	const batches = 6
	const perBatch = 25
	for b := 0; b < batches; b++ {
		exprs := make([]expr, perBatch)
		var src strings.Builder
		src.WriteString("int main() {\n")
		for i := range exprs {
			exprs[i] = genExpr(rng, 4)
			fmt.Fprintf(&src, "\tif ((%s) != (%d)) { return %d; }\n",
				exprs[i].text, exprs[i].value, i+1)
		}
		src.WriteString("\treturn 0;\n}\n")

		img, err := rt.BuildImage(src.String())
		if err != nil {
			t.Fatalf("batch %d: build: %v", b, err)
		}
		k := kernel.New(&silentClient{})
		ld, err := img.Load(k, nil)
		if err != nil {
			t.Fatalf("batch %d: load: %v", b, err)
		}
		runErr := ld.Machine.Run()
		exit, ok := runErr.(*vm.ExitStatus)
		if !ok {
			t.Fatalf("batch %d ended with %v", b, runErr)
		}
		if exit.Code != 0 {
			idx := exit.Code - 1
			t.Errorf("batch %d: expression %d mismatch:\n%s == %d (Go), MiniC disagrees",
				b, idx, exprs[idx].text, exprs[idx].value)
		}
	}
}

// TestDifferentialComparisons does the same for comparison and logical
// operators, whose codegen (branch materialization) differs from the
// arithmetic path.
func TestDifferentialComparisons(t *testing.T) {
	rng := rand.New(rand.NewSource(2001))
	const perBatch = 40
	var src strings.Builder
	type cmpCase struct {
		text  string
		value int32
	}
	cases := make([]cmpCase, perBatch)
	ops := []struct {
		sym string
		fn  func(a, b int32) bool
	}{
		{"==", func(a, b int32) bool { return a == b }},
		{"!=", func(a, b int32) bool { return a != b }},
		{"<", func(a, b int32) bool { return a < b }},
		{"<=", func(a, b int32) bool { return a <= b }},
		{">", func(a, b int32) bool { return a > b }},
		{">=", func(a, b int32) bool { return a >= b }},
	}
	src.WriteString("int main() {\n")
	for i := range cases {
		a := int32(rng.Intn(21) - 10)
		bv := int32(rng.Intn(21) - 10)
		op := ops[rng.Intn(len(ops))]
		v := int32(0)
		if op.fn(a, bv) {
			v = 1
		}
		// Exercise both value context and condition context.
		if i%2 == 0 {
			cases[i] = cmpCase{fmt.Sprintf("((%d) %s (%d))", a, op.sym, bv), v}
		} else {
			neg := int32(0)
			if v == 0 {
				neg = 1
			}
			cases[i] = cmpCase{fmt.Sprintf("(!((%d) %s (%d)))", a, op.sym, bv), neg}
		}
		fmt.Fprintf(&src, "\tif ((%s) != (%d)) { return %d; }\n", cases[i].text, cases[i].value, i+1)
	}
	src.WriteString("\treturn 0;\n}\n")

	img, err := rt.BuildImage(src.String())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	k := kernel.New(&silentClient{})
	ld, err := img.Load(k, nil)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	runErr := ld.Machine.Run()
	exit, ok := runErr.(*vm.ExitStatus)
	if !ok {
		t.Fatalf("ended with %v", runErr)
	}
	if exit.Code != 0 {
		idx := exit.Code - 1
		t.Errorf("comparison %d mismatch: %s should be %d",
			idx, cases[idx].text, cases[idx].value)
	}
}
