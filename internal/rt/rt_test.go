package rt_test

import (
	"errors"
	"testing"

	"faultsec/internal/kernel"
	"faultsec/internal/rt"
	"faultsec/internal/vm"
)

// silentClient ends the session immediately; programs under test do not
// read.
type silentClient struct{ lines []string }

func (c *silentClient) OnServerLine(line string) []string {
	c.lines = append(c.lines, line)
	return nil
}
func (c *silentClient) Done() bool { return true }

// runMain builds main() (plus LibC) and runs it, returning the exit code
// and the server lines written.
func runMain(t *testing.T, src string) (int, []string) {
	t.Helper()
	img, err := rt.BuildImage(src)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	client := &silentClient{}
	k := kernel.New(client)
	ld, err := img.Load(k, nil)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	err = ld.Machine.Run()
	var exit *vm.ExitStatus
	if !errors.As(err, &exit) {
		t.Fatalf("run ended with %v, want exit (after %d steps)", err, ld.Machine.Steps)
	}
	return exit.Code, client.lines
}

func TestExitCode(t *testing.T) {
	code, _ := runMain(t, `int main() { return 7; }`)
	if code != 7 {
		t.Errorf("exit = %d, want 7", code)
	}
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		name string
		expr string
		want int
	}{
		{"add", "2+3", 5},
		{"sub", "10-4", 6},
		{"mul", "6*7", 42},
		{"div", "100/7", 14},
		{"mod", "100%7", 2},
		{"neg_div", "(0-100)/7", -14},
		{"shift_left", "3<<4", 48},
		{"shift_right", "256>>3", 32},
		{"sar_negative", "(0-16)>>2", -4},
		{"bit_and", "0x3C & 0x0F", 12},
		{"bit_or", "0x30 | 0x05", 53},
		{"bit_xor", "0xFF ^ 0x0F", 240},
		{"complement", "~0 & 0xFF", 255},
		{"precedence", "2+3*4", 14},
		{"parens", "(2+3)*4", 20},
		{"unary_minus", "-(5-12)", 7},
		{"compare_lt", "3 < 5", 1},
		{"compare_gt", "3 > 5", 0},
		{"compare_eq", "4 == 4", 1},
		{"compare_ne", "4 != 4", 0},
		{"logical_and", "1 && 2", 1},
		{"logical_and_zero", "1 && 0", 0},
		{"logical_or", "0 || 3", 1},
		{"not", "!0", 1},
		{"not_nonzero", "!42", 0},
		{"char_lit", "'A'", 65},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, _ := runMain(t, `int main() { return `+tt.expr+`; }`)
			want := tt.want & 0xFF // exit codes are bytes on Linux, but our
			// kernel keeps full int32; compare full value instead
			_ = want
			if code != tt.want {
				t.Errorf("%s = %d, want %d", tt.expr, code, tt.want)
			}
		})
	}
}

func TestControlFlow(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want int
	}{
		{"if_else_taken", `int main() { if (3 > 2) { return 1; } else { return 2; } }`, 1},
		{"if_else_not_taken", `int main() { if (2 > 3) { return 1; } else { return 2; } }`, 2},
		{"while_sum", `int main() { int s = 0; int i = 1; while (i <= 10) { s += i; i++; } return s; }`, 55},
		{"for_sum", `int main() { int s = 0; int i; for (i = 1; i <= 10; i++) { s = s + i; } return s; }`, 55},
		{"break", `int main() { int i = 0; while (1) { if (i == 5) { break; } i++; } return i; }`, 5},
		{"continue", `int main() { int s = 0; int i; for (i = 0; i < 10; i++) { if (i % 2) { continue; } s += i; } return s; }`, 20},
		{"nested_loops", `int main() { int s = 0; int i; int j; for (i = 0; i < 5; i++) { for (j = 0; j < 5; j++) { s++; } } return s; }`, 25},
		{"short_circuit_and", `int g = 0; int bump() { g = 1; return 1; } int main() { int x = 0 && bump(); return g * 10 + x; }`, 0},
		{"short_circuit_or", `int g = 0; int bump() { g = 1; return 1; } int main() { int x = 1 || bump(); return g * 10 + x; }`, 1},
		{"recursion", `int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } int main() { return fib(10); }`, 55},
		{"post_inc_value", `int main() { int i = 5; int j = i++; return j * 10 + i; }`, 56},
		{"post_dec_value", `int main() { int i = 5; int j = i--; return j * 10 + i; }`, 54},
		{"prefix_inc", `int main() { int i = 5; int j = ++i; return j * 10 + i; }`, 66},
		{"compound_assign", `int main() { int x = 10; x *= 3; x -= 5; x /= 5; return x; }`, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, _ := runMain(t, tt.src)
			if code != tt.want {
				t.Errorf("got %d, want %d", code, tt.want)
			}
		})
	}
}

func TestPointersAndArrays(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want int
	}{
		{"local_array", `int main() { int a[4]; a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4; return a[0]+a[1]+a[2]+a[3]; }`, 10},
		{"pointer_deref", `int main() { int x = 41; int *p = &x; *p = *p + 1; return x; }`, 42},
		{"pointer_arith", `int main() { int a[3]; int *p = a; a[0]=10; a[1]=20; a[2]=30; p = p + 2; return *p; }`, 30},
		{"char_array", `int main() { char b[8]; b[0] = 'h'; b[1] = 'i'; b[2] = 0; return strlen(b); }`, 2},
		{"global_array", `int tab[5] = {2, 4, 6, 8, 10}; int main() { int s = 0; int i; for (i = 0; i < 5; i++) { s += tab[i]; } return s; }`, 30},
		{"global_scalar", `int g = 1000; int main() { g = g + 234; return g - 1000; }`, 234},
		{"string_literal", `int main() { return strlen("hello, world"); }`, 12},
		{"strcmp_equal", `int main() { return strcmp("abc", "abc") == 0; }`, 1},
		{"strcmp_less", `int main() { return strcmp("abc", "abd") < 0; }`, 1},
		{"strcmp_greater", `int main() { return strcmp("abe", "abd") > 0; }`, 1},
		{"strncmp", `int main() { return strncmp("abcdef", "abcxyz", 3) == 0; }`, 1},
		{"strcpy_strcat", `int main() { char b[32]; strcpy(b, "foo"); strcat(b, "bar"); return strcmp(b, "foobar") == 0; }`, 1},
		{"atoi", `int main() { return atoi("1234") / 2; }`, 617},
		{"atoi_negative", `int main() { return atoi("-56") + 100; }`, 44},
		{"string_table", `char *names[3] = {"tom", "dick", "harry"}; int main() { return strlen(names[2]); }`, 5},
		{"char_unsigned", `int main() { char c = 200; return c; }`, 200},
		{"strchr_at", `int main() { return strchr_at("user pass", ' '); }`, 4},
		{"strchr_missing", `int main() { return strchr_at("abc", 'z'); }`, -1},
		{"memset", `int main() { char b[8]; memset(b, 'x', 7); b[7] = 0; return strlen(b); }`, 7},
		{"address_of_element", `int main() { char b[8]; strcpy(b, "abcdef"); return strlen(&b[2]); }`, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, _ := runMain(t, tt.src)
			if code != tt.want {
				t.Errorf("got %d, want %d", code, tt.want)
			}
		})
	}
}

func TestWriteAndXcrypt(t *testing.T) {
	code, lines := runMain(t, `
int main() {
	write_line("hello");
	write_str("x=");
	write_int(-1234);
	write_line("");
	return xcrypt("secret", 17) & 0xFF;
}`)
	if len(lines) != 2 || lines[0] != "hello" || lines[1] != "x=-1234" {
		t.Errorf("lines = %q", lines)
	}
	want := int(rt.Xcrypt("secret", 17) & 0xFF)
	if code != want {
		t.Errorf("xcrypt mismatch: MiniC %d, Go %d", code, want)
	}
}

func TestXcryptMatchesGoForManyInputs(t *testing.T) {
	inputs := []string{"", "a", "password", "A longer pass phrase!", "0123456789"}
	for _, in := range inputs {
		src := `int main() { return xcrypt("` + in + `", 3) & 0x7F; }`
		code, _ := runMain(t, src)
		want := int(rt.Xcrypt(in, 3) & 0x7F)
		if code != want {
			t.Errorf("xcrypt(%q): MiniC %d, Go %d", in, code, want)
		}
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	img, err := rt.BuildImage(`int main() { int z = 0; return 5 / z; }`)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	k := kernel.New(&silentClient{})
	ld, err := img.Load(k, nil)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	runErr := ld.Machine.Run()
	var fault *vm.Fault
	if !errors.As(runErr, &fault) {
		t.Fatalf("run ended with %v, want fault", runErr)
	}
	if fault.Kind != vm.FaultDivide {
		t.Errorf("fault = %v, want divide error", fault)
	}
}

func TestNullDerefFaults(t *testing.T) {
	img, err := rt.BuildImage(`int main() { int *p = 0; return *p; }`)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	k := kernel.New(&silentClient{})
	ld, err := img.Load(k, nil)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	runErr := ld.Machine.Run()
	var fault *vm.Fault
	if !errors.As(runErr, &fault) {
		t.Fatalf("run ended with %v, want fault", runErr)
	}
	if fault.Kind != vm.FaultMemory {
		t.Errorf("fault = %v, want memory fault", fault)
	}
	if fault.Kind.Signal() != "SIGSEGV" {
		t.Errorf("signal = %s, want SIGSEGV", fault.Kind.Signal())
	}
}

func TestSwitchStatement(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want int
	}{
		{"simple_case", `int f(int x) { switch (x) { case 1: return 10; case 2: return 20; default: return -1; } } int main() { return f(2); }`, 20},
		{"default_taken", `int f(int x) { switch (x) { case 1: return 10; default: return 99; } } int main() { return f(7); }`, 99},
		{"no_default_falls_out", `int main() { int r = 5; switch (3) { case 1: r = 1; break; case 2: r = 2; break; } return r; }`, 5},
		{"fallthrough", `int main() { int r = 0; switch (1) { case 1: r += 1; case 2: r += 2; case 3: r += 4; break; case 4: r += 8; } return r; }`, 7},
		{"break_stops_fallthrough", `int main() { int r = 0; switch (2) { case 1: r += 1; case 2: r += 2; break; case 3: r += 4; } return r; }`, 2},
		{"negative_case", `int main() { switch (-3) { case -3: return 33; default: return 0; } }`, 33},
		{"char_scrutinee", `int main() { char c = 'Q'; switch (c) { case 'P': return 1; case 'Q': return 2; } return 0; }`, 2},
		{"switch_in_loop_break_scopes", `int main() {
			int total = 0;
			int i;
			for (i = 0; i < 4; i++) {
				switch (i) {
				case 0: total += 1; break;
				case 2: total += 10; break;
				default: total += 100; break;
				}
			}
			return total;
		}`, 211},
		{"continue_inside_switch_reaches_loop", `int main() {
			int total = 0;
			int i;
			for (i = 0; i < 5; i++) {
				switch (i % 2) {
				case 1: continue;
				}
				total += i;
			}
			return total;
		}`, 6},
		{"locals_in_case_bodies", `int main() {
			switch (2) {
			case 2:
				break;
			}
			int y = 41;
			return y + 1;
		}`, 42},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, _ := runMain(t, tt.src)
			if code != tt.want {
				t.Errorf("got %d, want %d", code, tt.want)
			}
		})
	}
}
