// Package rt provides the runtime underneath the study's MiniC programs:
// the _start entry stub (assembly) and a small C library (MiniC source)
// with string routines, line-oriented connection I/O, and the toy xcrypt
// password hash that stands in for crypt(3). See DESIGN.md for the
// substitution rationale.
package rt

import (
	"strings"

	"faultsec/internal/asm"
	"faultsec/internal/cc"
	"faultsec/internal/image"
)

// Startup is the assembly entry stub: call main, pass its return value to
// exit(2).
const Startup = `
.text
.global _start
.func _start
_start:
	call main
	mov ebx, eax
	mov eax, 1
	int 0x80
.endfunc
`

// LibC is the MiniC standard library linked into every program.
const LibC = `
/* ---- string routines (branch-dense, like real libc C fallbacks) ---- */

int strlen(char *s) {
	int n = 0;
	while (s[n]) { n = n + 1; }
	return n;
}

int strcmp(char *a, char *b) {
	int i = 0;
	while (a[i] && a[i] == b[i]) { i = i + 1; }
	return a[i] - b[i];
}

int strncmp(char *a, char *b, int n) {
	int i = 0;
	while (i < n) {
		if (!a[i] || a[i] != b[i]) { return a[i] - b[i]; }
		i = i + 1;
	}
	return 0;
}

char *strcpy(char *dst, char *src) {
	int i = 0;
	while (src[i]) { dst[i] = src[i]; i = i + 1; }
	dst[i] = 0;
	return dst;
}

char *strcat(char *dst, char *src) {
	int n = strlen(dst);
	int i = 0;
	while (src[i]) { dst[n + i] = src[i]; i = i + 1; }
	dst[n + i] = 0;
	return dst;
}

int strchr_at(char *s, int c) {
	/* index of first c in s, or -1 */
	int i = 0;
	while (s[i]) {
		if (s[i] == c) { return i; }
		i = i + 1;
	}
	return 0 - 1;
}

void *memset(char *p, int v, int n) {
	int i = 0;
	while (i < n) { p[i] = v; i = i + 1; }
	return p;
}

void *memcpy(char *dst, char *src, int n) {
	int i = 0;
	while (i < n) { dst[i] = src[i]; i = i + 1; }
	return dst;
}

int atoi(char *s) {
	int v = 0;
	int i = 0;
	int neg = 0;
	if (s[0] == '-') { neg = 1; i = 1; }
	while (s[i] >= '0' && s[i] <= '9') {
		v = v * 10 + (s[i] - '0');
		i = i + 1;
	}
	if (neg) { return 0 - v; }
	return v;
}

/* ---- buffered connection input (fd 0) ---- */

char __rbuf[256];
int __rpos;
int __rlen;

int read_char() {
	if (__rpos >= __rlen) {
		__rlen = sys_read(0, __rbuf, 256);
		__rpos = 0;
		if (__rlen <= 0) { return 0 - 1; }
	}
	int c = __rbuf[__rpos];
	__rpos = __rpos + 1;
	return c;
}

/*
 * read_line reads one LF-terminated line into buf (at most max-1 bytes),
 * strips CR and LF, NUL-terminates. Returns the line length, or -1 at EOF
 * with nothing read.
 */
int read_line(char *buf, int max) {
	int n = 0;
	while (1) {
		int c = read_char();
		if (c < 0) {
			if (n == 0) { return 0 - 1; }
			break;
		}
		if (c == '\n') { break; }
		if (c == '\r') { continue; }
		if (n < max - 1) { buf[n] = c; n = n + 1; }
	}
	buf[n] = 0;
	return n;
}

/* ---- connection output (fd 1) ---- */

int write_str(char *s) {
	return sys_write(1, s, strlen(s));
}

void write_line(char *s) {
	write_str(s);
	sys_write(1, "\r\n", 2);
}

void write_int(int v) {
	char tmp[12];
	int i = 11;
	int neg = 0;
	tmp[i] = 0;
	if (v == 0) {
		write_str("0");
		return;
	}
	if (v < 0) { neg = 1; v = 0 - v; }
	while (v > 0) {
		i = i - 1;
		tmp[i] = '0' + v % 10;
		v = v / 10;
	}
	if (neg) { i = i - 1; tmp[i] = '-'; }
	write_str(&tmp[i]);
}

/* ---- toy crypt(3) stand-in ----
 * Like the real crypt(3) (25 iterations of modified DES), xcrypt is
 * deliberately iterated: 128 mixing rounds over the input. The cost
 * (roughly 15-20k instructions for a typical password) matters to the
 * study: corrupted control flow that wrongly enters the password check
 * executes the full hash before crashing at the compare, producing the
 * paper's longest transient windows of vulnerability (>16,000
 * instructions, Figure 4).
 */

int xcrypt(char *pw, int salt) {
	int h = 5381 + salt;
	int r;
	int i;
	for (r = 0; r < 128; r++) {
		i = 0;
		while (pw[i]) {
			h = h * 33 + pw[i] + r;
			h = h & 2147483647;
			i = i + 1;
		}
		h = h ^ (h / 128);
		h = h & 2147483647;
	}
	return h;
}
`

// BuildImage compiles MiniC sources (application code plus LibC) together
// with the Startup stub and links the result. Sources are concatenated as
// a single translation unit.
func BuildImage(minicSources ...string) (*image.Image, error) {
	return BuildImageWithOptions(cc.Options{}, minicSources...)
}

// BuildImageWithOptions is BuildImage with explicit codegen options (used
// by the codegen-style ablation).
func BuildImageWithOptions(opts cc.Options, minicSources ...string) (*image.Image, error) {
	var src strings.Builder
	src.WriteString(LibC)
	for _, s := range minicSources {
		src.WriteString("\n")
		src.WriteString(s)
	}
	asmText, err := cc.CompileWithOptions(src.String(), opts)
	if err != nil {
		return nil, err
	}
	obj, err := asm.Assemble(asmText + "\n" + Startup)
	if err != nil {
		return nil, err
	}
	return image.Link(obj)
}

// Xcrypt mirrors the MiniC xcrypt hash in Go, for building the password
// databases baked into server images.
func Xcrypt(pw string, salt int32) int32 {
	h := int32(5381) + salt
	for r := int32(0); r < 128; r++ {
		for i := 0; i < len(pw); i++ {
			h = h*33 + int32(pw[i]) + r
			h &= 0x7FFFFFFF
		}
		h ^= h / 128
		h &= 0x7FFFFFFF
	}
	return h
}
